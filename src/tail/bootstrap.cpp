#include "tail/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <vector>

#include "stats/descriptive.h"
#include "support/executor.h"
#include "support/workspace.h"

namespace fullweb::tail {

using support::Error;
using support::Result;

namespace {

/// Shared driver: point estimate + percentile interval over resamples.
Result<BootstrapCi> bootstrap_ci(
    std::span<const double> samples, support::Rng& rng,
    const BootstrapOptions& options,
    const std::function<Result<double>(std::span<const double>)>& estimator) {
  if (samples.size() < 20)
    return Error::insufficient_data("bootstrap_ci: need n >= 20");
  if (!(options.level > 0.0 && options.level < 1.0))
    return Error::invalid_argument("bootstrap_ci: level must be in (0,1)");
  if (options.replicates < 20)
    return Error::invalid_argument("bootstrap_ci: need >= 20 replicates");

  auto point = estimator(samples);
  if (!point) return point.error();

  // One level-0 (leaf) RNG substream per replicate: replicate b always
  // draws the same resample no matter how replicates are chunked across
  // threads, so the interval is identical at any thread count (and to a
  // serial run).
  support::RngSplitter streams(rng, 0);
  std::vector<support::Rng> replicate_rngs;
  replicate_rngs.reserve(options.replicates);
  for (std::size_t b = 0; b < options.replicates; ++b)
    replicate_rngs.push_back(streams.stream(b));

  std::vector<std::optional<double>> slots(options.replicates);
  support::Executor& ex = support::Executor::resolve(options.executor);
  ex.parallel_for(0, options.replicates, [&](std::size_t b) {
    support::Rng& replicate_rng = replicate_rngs[b];
    // Per-worker reusable resample buffer: each executor thread owns one, so
    // replicates executed back-to-back on a worker stop paying an n-sized
    // allocation each. Every element is overwritten before the estimator
    // reads it, so reuse cannot leak state between replicates.
    auto& resample =
        support::Workspace::for_thread().real(support::ws::kBootstrapResample);
    resample.resize(samples.size());
    for (auto& v : resample) v = samples[replicate_rng.below(samples.size())];
    if (auto est = estimator(resample); est.ok()) slots[b] = est.value();
  });
  std::vector<double> estimates;
  estimates.reserve(options.replicates);
  for (const auto& slot : slots)
    if (slot.has_value()) estimates.push_back(*slot);
  const double success = static_cast<double>(estimates.size()) /
                         static_cast<double>(options.replicates);
  if (success < options.min_success)
    return Error::numeric(
        "bootstrap_ci: estimator failed on most resamples (tail too sparse)");

  std::sort(estimates.begin(), estimates.end());
  const double tail = 0.5 * (1.0 - options.level);
  BootstrapCi ci;
  ci.estimate = point.value();
  ci.lo = stats::quantile_sorted(estimates, tail);
  ci.hi = stats::quantile_sorted(estimates, 1.0 - tail);
  ci.replicates_used = estimates.size();
  return ci;
}

}  // namespace

Result<BootstrapCi> bootstrap_llcd_ci(std::span<const double> samples,
                                      support::Rng& rng,
                                      const BootstrapOptions& options,
                                      const LlcdOptions& llcd) {
  return bootstrap_ci(samples, rng, options,
                      [&llcd](std::span<const double> xs) -> Result<double> {
                        auto fit = llcd_fit(xs, llcd);
                        if (!fit) return fit.error();
                        return fit.value().alpha;
                      });
}

Result<BootstrapCi> bootstrap_hill_ci(std::span<const double> samples,
                                      support::Rng& rng,
                                      const BootstrapOptions& options,
                                      const HillOptions& hill) {
  return bootstrap_ci(samples, rng, options,
                      [&hill](std::span<const double> xs) -> Result<double> {
                        auto est = hill_estimate(xs, hill);
                        if (!est) return est.error();
                        if (!est.value().stabilized)
                          return Error::numeric("hill not stabilized");
                        return est.value().alpha;
                      });
}

}  // namespace fullweb::tail
