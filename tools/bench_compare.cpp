// bench_compare — diff two google-benchmark JSON result files and flag
// regressions.
//
//   bench_compare BASELINE.json NEW.json [--threshold 0.10] [--metric real_time]
//
// Matches benchmarks by name, compares the chosen per-iteration time metric,
// and prints one row per benchmark with the ratio new/old. Exits 1 when any
// benchmark regressed by more than the threshold (default +10%) or when a
// baseline benchmark is missing from the new run (a rename or a silently
// dropped bench must not shrink the gate); benchmarks only present in the
// new run are informational. A CI regression gate is:
//
//   ./bench/bench_micro --benchmark_out=new.json --benchmark_out_format=json
//   ./tools/bench_compare BENCH_micro.json new.json
//
// A second mode gates absolute scaling instead of relative regressions:
//
//   bench_compare --min-speedup 2.5 --name fullweb_fit/threads:4 RESULTS.json
//
// reads the "speedup" field bench_parallel_scaling writes per benchmark and
// exits 1 when any matching row is below the floor — or when no row matches
// at all, so a renamed benchmark cannot silently disarm the gate.
//
// A third mode audits committed baselines for build type:
//
//   bench_compare --check-release BENCH_ingest.json BENCH_fullscale.json
//
// exits 1 when any file was recorded by a debug binary (see
// detect_build_type in the lib: the custom context.binary_build_type stamp
// wins over libbenchmark's library_build_type). Files without either field
// pass — old baselines are not retroactively failed. Compare mode applies
// the same check to its BASELINE argument: a debug baseline makes every
// release run look improved, so it fails the gate outright.
//
// The comparison and parsing logic lives in bench_compare_lib (unit-tested
// by test_tools_bench_compare); this file is only flag handling.
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_compare_lib.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: bench_compare BASELINE.json NEW.json "
               "[--threshold 0.10] [--metric real_time|cpu_time]\n"
               "       bench_compare --min-speedup FLOOR [--name SUBSTRING] "
               "RESULTS.json\n"
               "       bench_compare --check-release RESULTS.json...\n");
}

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double threshold = 0.10;
  std::string metric = "real_time";
  double min_speedup = 0.0;
  bool speedup_mode = false;
  bool check_release_mode = false;
  std::string name_filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::stod(argv[++i]);
    } else if (arg == "--metric" && i + 1 < argc) {
      metric = argv[++i];
    } else if (arg == "--min-speedup" && i + 1 < argc) {
      min_speedup = std::stod(argv[++i]);
      speedup_mode = true;
    } else if (arg == "--name" && i + 1 < argc) {
      name_filter = argv[++i];
    } else if (arg == "--check-release") {
      check_release_mode = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      positional.push_back(arg);
    }
  }

  if (check_release_mode) {
    if (positional.empty()) {
      usage();
      return 2;
    }
    int debug_files = 0;
    for (const std::string& path : positional) {
      const auto text = slurp(path);
      if (!text) {
        std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
        return 2;
      }
      const std::string type = fullweb::benchcmp::detect_build_type(*text);
      const bool debug = type == "debug";
      if (debug) ++debug_files;
      std::printf("%-40s %10s  %s\n", path.c_str(),
                  type.empty() ? "unknown" : type.c_str(),
                  debug ? "DEBUG BASELINE" : "ok");
    }
    if (debug_files > 0)
      std::fprintf(stderr,
                   "bench_compare: %d baseline file(s) recorded by a debug "
                   "binary — re-record in Release\n",
                   debug_files);
    return debug_files > 0 ? 1 : 0;
  }

  if (speedup_mode) {
    if (positional.size() != 1) {
      usage();
      return 2;
    }
    std::ifstream in(positional[0]);
    if (!in) {
      std::fprintf(stderr, "bench_compare: cannot open %s\n",
                   positional[0].c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto report = fullweb::benchcmp::check_min_speedup(
        buffer.str(), min_speedup, name_filter);
    if (!report.ok()) {
      std::fprintf(stderr, "%s (%s)\n", report.error().message.c_str(),
                   positional[0].c_str());
      return 2;
    }
    std::fputs(fullweb::benchcmp::render_speedup(report.value(), min_speedup,
                                                 name_filter)
                   .c_str(),
               stdout);
    return report.value().failed() ? 1 : 0;
  }

  if (positional.size() != 2) {
    usage();
    return 2;
  }

  const auto baseline_text = slurp(positional[0]);
  if (!baseline_text) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n",
                 positional[0].c_str());
    return 2;
  }
  const auto baseline =
      fullweb::benchcmp::parse_results(*baseline_text, metric);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s (%s)\n", baseline.error().message.c_str(),
                 positional[0].c_str());
    return 2;
  }
  const bool debug_baseline = fullweb::benchcmp::is_debug_build(*baseline_text);
  if (debug_baseline)
    std::fprintf(stderr,
                 "bench_compare: WARNING: baseline %s was recorded by a debug "
                 "binary; comparison is meaningless — failing the gate\n",
                 positional[0].c_str());
  if (baseline.value().empty()) {
    // A baseline with zero usable rows (wrong --metric, empty array) would
    // make every comparison vacuously pass — refuse instead.
    std::fprintf(stderr,
                 "bench_compare: no usable benchmarks in %s for metric %s\n",
                 positional[0].c_str(), metric.c_str());
    return 2;
  }
  const auto fresh = fullweb::benchcmp::load_results(positional[1], metric);
  if (!fresh.ok()) {
    std::fprintf(stderr, "%s\n", fresh.error().message.c_str());
    return 2;
  }

  const auto report =
      fullweb::benchcmp::compare(baseline.value(), fresh.value(), threshold);
  std::fputs(fullweb::benchcmp::render(report, threshold).c_str(), stdout);
  return report.failed() || debug_baseline ? 1 : 0;
}
