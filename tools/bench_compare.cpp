// bench_compare — diff two google-benchmark JSON result files and flag
// regressions.
//
//   bench_compare BASELINE.json NEW.json [--threshold 0.10] [--metric real_time]
//
// Matches benchmarks by name, compares the chosen per-iteration time metric,
// and prints one row per benchmark with the ratio new/old. Exits 1 when any
// benchmark regressed by more than the threshold (default +10%) or when a
// baseline benchmark is missing from the new run (a rename or a silently
// dropped bench must not shrink the gate); benchmarks only present in the
// new run are informational. A CI regression gate is:
//
//   ./bench/bench_micro --benchmark_out=new.json --benchmark_out_format=json
//   ./tools/bench_compare BENCH_micro.json new.json
//
// A second mode gates absolute scaling instead of relative regressions:
//
//   bench_compare --min-speedup 2.5 --name fullweb_fit/threads:4 RESULTS.json
//
// reads the "speedup" field bench_parallel_scaling writes per benchmark and
// exits 1 when any matching row is below the floor — or when no row matches
// at all, so a renamed benchmark cannot silently disarm the gate.
//
// The comparison and parsing logic lives in bench_compare_lib (unit-tested
// by test_tools_bench_compare); this file is only flag handling.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_compare_lib.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: bench_compare BASELINE.json NEW.json "
               "[--threshold 0.10] [--metric real_time|cpu_time]\n"
               "       bench_compare --min-speedup FLOOR [--name SUBSTRING] "
               "RESULTS.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double threshold = 0.10;
  std::string metric = "real_time";
  double min_speedup = 0.0;
  bool speedup_mode = false;
  std::string name_filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::stod(argv[++i]);
    } else if (arg == "--metric" && i + 1 < argc) {
      metric = argv[++i];
    } else if (arg == "--min-speedup" && i + 1 < argc) {
      min_speedup = std::stod(argv[++i]);
      speedup_mode = true;
    } else if (arg == "--name" && i + 1 < argc) {
      name_filter = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      positional.push_back(arg);
    }
  }

  if (speedup_mode) {
    if (positional.size() != 1) {
      usage();
      return 2;
    }
    std::ifstream in(positional[0]);
    if (!in) {
      std::fprintf(stderr, "bench_compare: cannot open %s\n",
                   positional[0].c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const auto report = fullweb::benchcmp::check_min_speedup(
        buffer.str(), min_speedup, name_filter);
    if (!report.ok()) {
      std::fprintf(stderr, "%s (%s)\n", report.error().message.c_str(),
                   positional[0].c_str());
      return 2;
    }
    std::fputs(fullweb::benchcmp::render_speedup(report.value(), min_speedup,
                                                 name_filter)
                   .c_str(),
               stdout);
    return report.value().failed() ? 1 : 0;
  }

  if (positional.size() != 2) {
    usage();
    return 2;
  }

  const auto baseline = fullweb::benchcmp::load_results(positional[0], metric);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.error().message.c_str());
    return 2;
  }
  if (baseline.value().empty()) {
    // A baseline with zero usable rows (wrong --metric, empty array) would
    // make every comparison vacuously pass — refuse instead.
    std::fprintf(stderr,
                 "bench_compare: no usable benchmarks in %s for metric %s\n",
                 positional[0].c_str(), metric.c_str());
    return 2;
  }
  const auto fresh = fullweb::benchcmp::load_results(positional[1], metric);
  if (!fresh.ok()) {
    std::fprintf(stderr, "%s\n", fresh.error().message.c_str());
    return 2;
  }

  const auto report =
      fullweb::benchcmp::compare(baseline.value(), fresh.value(), threshold);
  std::fputs(fullweb::benchcmp::render(report, threshold).c_str(), stdout);
  return report.failed() ? 1 : 0;
}
