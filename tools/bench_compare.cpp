// bench_compare — diff two google-benchmark JSON result files and flag
// regressions.
//
//   bench_compare BASELINE.json NEW.json [--threshold 0.10] [--metric real_time]
//
// Matches benchmarks by name, compares the chosen per-iteration time metric,
// and prints one row per benchmark with the ratio new/old. Exits 1 when any
// benchmark regressed by more than the threshold (default +10%) or when a
// baseline benchmark is missing from the new run (a rename or a silently
// dropped bench must not shrink the gate); benchmarks only present in the
// new run are informational. A CI regression gate is:
//
//   ./bench/bench_micro --benchmark_out=new.json --benchmark_out_format=json
//   ./tools/bench_compare BENCH_micro.json new.json
//
// The parser accepts the subset of JSON google-benchmark and
// bench_parallel_scaling emit (objects, arrays, strings, numbers, bools,
// null); it ignores fields it does not know.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader.

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  [[nodiscard]] const JsonObject* object() const {
    auto p = std::get_if<std::shared_ptr<JsonObject>>(&v);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] const JsonArray* array() const {
    auto p = std::get_if<std::shared_ptr<JsonArray>>(&v);
    return p ? p->get() : nullptr;
  }
  [[nodiscard]] std::optional<double> number() const {
    auto p = std::get_if<double>(&v);
    if (p) return *p;
    return std::nullopt;
  }
  [[nodiscard]] std::optional<std::string> string() const {
    auto p = std::get_if<std::string>(&v);
    if (p) return *p;
    return std::nullopt;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  std::optional<JsonValue> parse() {
    auto value = parse_value();
    skip_ws();
    if (!value || pos_ != text_.size()) return std::nullopt;
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      return JsonValue{*s};
    }
    if (literal("true")) return JsonValue{true};
    if (literal("false")) return JsonValue{false};
    if (literal("null")) return JsonValue{nullptr};
    return parse_number();
  }

  std::optional<JsonValue> parse_object() {
    if (!consume('{')) return std::nullopt;
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (consume('}')) return JsonValue{obj};
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key || !consume(':')) return std::nullopt;
      auto value = parse_value();
      if (!value) return std::nullopt;
      (*obj)[*key] = *value;
      if (consume(',')) continue;
      if (consume('}')) return JsonValue{obj};
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_array() {
    if (!consume('[')) return std::nullopt;
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (consume(']')) return JsonValue{arr};
    while (true) {
      auto value = parse_value();
      if (!value) return std::nullopt;
      arr->push_back(*value);
      if (consume(',')) continue;
      if (consume(']')) return JsonValue{arr};
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return std::nullopt;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u':  // keep the raw escape; names never need code points
            if (pos_ + 4 > text_.size()) return std::nullopt;
            out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          default: return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    if (pos_ == start) return std::nullopt;
    try {
      return JsonValue{std::stod(text_.substr(start, pos_ - start))};
    } catch (...) {
      return std::nullopt;
    }
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

struct BenchResult {
  double time = 0.0;  ///< chosen metric, ns/op
  double items_per_second = 0.0;
};

/// Extract name -> result from a google-benchmark-shaped document. Aggregate
/// rows (mean/median/stddev from --benchmark_repetitions) are skipped so a
/// repeated run still matches a plain baseline.
std::map<std::string, BenchResult> load_results(const std::string& path,
                                                const std::string& metric) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  JsonParser parser(buffer.str());
  const auto doc = parser.parse();
  const JsonObject* root = doc ? doc->object() : nullptr;
  const JsonArray* benchmarks = nullptr;
  if (root != nullptr) {
    if (auto it = root->find("benchmarks"); it != root->end())
      benchmarks = it->second.array();
  }
  if (benchmarks == nullptr) {
    std::fprintf(stderr, "bench_compare: %s has no \"benchmarks\" array\n",
                 path.c_str());
    std::exit(2);
  }

  std::map<std::string, BenchResult> out;
  for (const JsonValue& entry : *benchmarks) {
    const JsonObject* bench = entry.object();
    if (bench == nullptr) continue;
    auto field = [&](const char* key) -> std::optional<double> {
      auto it = bench->find(key);
      if (it == bench->end()) return std::nullopt;
      return it->second.number();
    };
    auto sfield = [&](const char* key) -> std::string {
      auto it = bench->find(key);
      if (it == bench->end()) return {};
      return it->second.string().value_or("");
    };
    const std::string name = sfield("name");
    if (name.empty()) continue;
    if (!sfield("aggregate_name").empty()) continue;
    auto time = field(metric.c_str());
    if (!time) time = field("real_time");
    if (!time) continue;
    double ns = *time;
    const std::string unit = sfield("time_unit");
    if (unit == "us") ns *= 1e3;
    else if (unit == "ms") ns *= 1e6;
    else if (unit == "s") ns *= 1e9;
    BenchResult r;
    r.time = ns;
    r.items_per_second = field("items_per_second").value_or(0.0);
    out[name] = r;
  }
  return out;
}

void usage() {
  std::fprintf(stderr,
               "usage: bench_compare BASELINE.json NEW.json "
               "[--threshold 0.10] [--metric real_time|cpu_time]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double threshold = 0.10;
  std::string metric = "real_time";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::stod(argv[++i]);
    } else if (arg == "--metric" && i + 1 < argc) {
      metric = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) {
    usage();
    return 2;
  }

  const auto baseline = load_results(positional[0], metric);
  const auto fresh = load_results(positional[1], metric);

  std::printf("%-40s %14s %14s %8s  %s\n", "benchmark", "base (ns)",
              "new (ns)", "ratio", "verdict");
  int regressions = 0;
  int compared = 0;
  int missing = 0;
  for (const auto& [name, base] : baseline) {
    const auto it = fresh.find(name);
    if (it == fresh.end()) {
      // A baseline key the new run never produced means the benchmark was
      // renamed or silently dropped — fail loudly instead of letting the
      // gate shrink to whatever still matches.
      std::printf("%-40s %14.0f %14s %8s  MISSING in new run\n", name.c_str(),
                  base.time, "-", "-");
      ++missing;
      continue;
    }
    ++compared;
    const double ratio = it->second.time / base.time;
    const char* verdict = "ok";
    if (ratio > 1.0 + threshold) {
      verdict = "REGRESSION";
      ++regressions;
    } else if (ratio < 1.0 - threshold) {
      verdict = "improved";
    }
    std::printf("%-40s %14.0f %14.0f %7.3fx  %s\n", name.c_str(), base.time,
                it->second.time, ratio, verdict);
  }
  for (const auto& [name, result] : fresh) {
    if (baseline.find(name) == baseline.end())
      std::printf("%-40s %14s %14.0f %8s  new benchmark\n", name.c_str(), "-",
                  result.time, "-");
  }

  std::printf("\n%d/%d benchmarks within %.0f%%; %d regression(s), %d missing\n",
              compared - regressions, compared, threshold * 100.0, regressions,
              missing);
  return regressions > 0 || missing > 0 ? 1 : 0;
}
