#include "bench_compare_lib.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/json.h"

namespace fullweb::benchcmp {

using support::Error;
using support::JsonArray;
using support::JsonObject;
using support::JsonValue;
using support::Result;

Result<BenchMap> parse_results(const std::string& text,
                               const std::string& metric) {
  const auto doc = support::json_parse(text);
  if (!doc) return Error::parse("bench_compare: malformed JSON");
  const JsonValue* benchmarks = doc->find("benchmarks");
  const JsonArray* arr = benchmarks ? benchmarks->array() : nullptr;
  if (arr == nullptr)
    return Error::parse("bench_compare: document has no \"benchmarks\" array");

  BenchMap out;
  for (const JsonValue& entry : *arr) {
    const JsonObject* bench = entry.object();
    if (bench == nullptr) continue;
    auto field = [&](const char* key) -> std::optional<double> {
      auto it = bench->find(key);
      if (it == bench->end()) return std::nullopt;
      return it->second.number();
    };
    auto sfield = [&](const char* key) -> std::string {
      auto it = bench->find(key);
      if (it == bench->end()) return {};
      return it->second.string().value_or("");
    };
    const std::string name = sfield("name");
    if (name.empty()) continue;
    if (!sfield("aggregate_name").empty()) continue;
    auto time = field(metric.c_str());
    if (!time) time = field("real_time");
    if (!time) continue;
    double ns = *time;
    const std::string unit = sfield("time_unit");
    if (unit == "us") ns *= 1e3;
    else if (unit == "ms") ns *= 1e6;
    else if (unit == "s") ns *= 1e9;
    BenchResult r;
    r.time = ns;
    r.items_per_second = field("items_per_second").value_or(0.0);
    out[name] = r;
  }
  return out;
}

Result<BenchMap> load_results(const std::string& path,
                              const std::string& metric) {
  std::ifstream in(path);
  if (!in) return Error::parse("bench_compare: cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = parse_results(buffer.str(), metric);
  if (!parsed.ok())
    return Error::parse(parsed.error().message + " (" + path + ")");
  return parsed;
}

CompareReport compare(const BenchMap& baseline, const BenchMap& fresh,
                      double threshold) {
  CompareReport report;
  for (const auto& [name, base] : baseline) {
    CompareRow row;
    row.name = name;
    row.base_time = base.time;
    const auto it = fresh.find(name);
    if (it == fresh.end()) {
      row.verdict = Verdict::kMissing;
      ++report.missing;
      report.rows.push_back(std::move(row));
      continue;
    }
    ++report.compared;
    row.new_time = it->second.time;
    row.ratio = base.time > 0.0 ? it->second.time / base.time : 0.0;
    if (row.ratio > 1.0 + threshold) {
      row.verdict = Verdict::kRegression;
      ++report.regressions;
    } else if (row.ratio < 1.0 - threshold) {
      row.verdict = Verdict::kImproved;
    }
    report.rows.push_back(std::move(row));
  }
  for (const auto& [name, result] : fresh) {
    if (baseline.find(name) != baseline.end()) continue;
    CompareRow row;
    row.name = name;
    row.new_time = result.time;
    row.verdict = Verdict::kNew;
    report.rows.push_back(std::move(row));
  }
  return report;
}

Result<SpeedupReport> check_min_speedup(const std::string& text,
                                        double min_speedup,
                                        const std::string& name_filter) {
  const auto doc = support::json_parse(text);
  if (!doc) return Error::parse("bench_compare: malformed JSON");
  const JsonValue* benchmarks = doc->find("benchmarks");
  const JsonArray* arr = benchmarks ? benchmarks->array() : nullptr;
  if (arr == nullptr)
    return Error::parse("bench_compare: document has no \"benchmarks\" array");

  SpeedupReport report;
  for (const JsonValue& entry : *arr) {
    const JsonObject* bench = entry.object();
    if (bench == nullptr) continue;
    const JsonValue* name_v = entry.find("name");
    const std::string name = name_v ? name_v->string().value_or("") : "";
    if (name.empty()) continue;
    if (!name_filter.empty() && name.find(name_filter) == std::string::npos)
      continue;
    const JsonValue* speedup_v = entry.find("speedup");
    const auto speedup = speedup_v ? speedup_v->number() : std::nullopt;
    if (!speedup) continue;
    SpeedupRow row;
    row.name = name;
    row.speedup = *speedup;
    if (const JsonValue* src = entry.find("speedup_source"))
      row.source = src->string().value_or("");
    row.pass = row.speedup >= min_speedup;
    ++report.checked;
    if (!row.pass) ++report.failures;
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string render_speedup(const SpeedupReport& report, double min_speedup,
                           const std::string& name_filter) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-40s %10s %10s  %s\n", "benchmark",
                "speedup", "source", "verdict");
  out += line;
  for (const SpeedupRow& row : report.rows) {
    std::snprintf(line, sizeof line, "%-40s %9.2fx %10s  %s\n",
                  row.name.c_str(), row.speedup,
                  row.source.empty() ? "-" : row.source.c_str(),
                  row.pass ? "ok" : "BELOW FLOOR");
    out += line;
  }
  if (report.checked == 0) {
    std::snprintf(line, sizeof line,
                  "no benchmarks matching \"%s\" carry a speedup field\n",
                  name_filter.c_str());
    out += line;
  }
  std::snprintf(line, sizeof line,
                "\n%d/%d benchmark(s) at or above %.2fx; %d below\n",
                report.checked - report.failures, report.checked, min_speedup,
                report.failures);
  out += line;
  return out;
}

std::string detect_build_type(const std::string& text) {
  const auto doc = support::json_parse(text);
  if (!doc) return {};
  const JsonValue* context = doc->find("context");
  if (context == nullptr) return {};
  for (const char* key : {"binary_build_type", "library_build_type"}) {
    if (const JsonValue* v = context->find(key)) {
      const auto s = v->string();
      if (s && !s->empty()) return *s;
    }
  }
  return {};
}

bool is_debug_build(const std::string& text) {
  return detect_build_type(text) == "debug";
}

std::string render(const CompareReport& report, double threshold) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-40s %14s %14s %8s  %s\n", "benchmark",
                "base (ns)", "new (ns)", "ratio", "verdict");
  out += line;
  for (const CompareRow& row : report.rows) {
    switch (row.verdict) {
      case Verdict::kMissing:
        std::snprintf(line, sizeof line, "%-40s %14.0f %14s %8s  MISSING in new run\n",
                      row.name.c_str(), row.base_time, "-", "-");
        break;
      case Verdict::kNew:
        std::snprintf(line, sizeof line, "%-40s %14s %14.0f %8s  new benchmark\n",
                      row.name.c_str(), "-", row.new_time, "-");
        break;
      default: {
        const char* verdict = row.verdict == Verdict::kRegression ? "REGRESSION"
                              : row.verdict == Verdict::kImproved ? "improved"
                                                                  : "ok";
        std::snprintf(line, sizeof line, "%-40s %14.0f %14.0f %7.3fx  %s\n",
                      row.name.c_str(), row.base_time, row.new_time, row.ratio,
                      verdict);
      }
    }
    out += line;
  }
  std::snprintf(line, sizeof line,
                "\n%d/%d benchmarks within %.0f%%; %d regression(s), %d missing\n",
                report.compared - report.regressions, report.compared,
                threshold * 100.0, report.regressions, report.missing);
  out += line;
  return out;
}

}  // namespace fullweb::benchcmp
