// fullweb_selftest — Monte Carlo estimator-calibration harness.
//
//   fullweb_selftest [--profile smoke|full] [--threads N] [--seed S]
//                    [--out validation_report.json] [--baseline PATH]
//                    [--baseline-rel-tol 1e-6] [--baseline-abs-tol 1e-9]
//                    [--check-determinism] [--verbose]
//
// Runs recovery experiments against synthetic ground truth (fGn with known
// H, Pareto/lognormal with known tail, true Poisson arrivals, stationary and
// trend+diurnal series) and gates every estimator and statistical test on
// documented bias bands, CI coverage, classification rate, and size/power.
// Exit codes: 0 = all gates pass (and baseline/determinism checks, when
// requested), 1 = a gate or check failed, 2 = usage error.
//
//   --check-determinism  runs the whole suite on a 1-thread and an N-thread
//                        executor and requires byte-identical reports.
//   --baseline PATH      compares the fresh report against a committed one
//                        (VALIDATION_baseline.json) and fails on drifted or
//                        missing metrics — the estimator-bias analogue of
//                        the bench_compare perf gate.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "support/cli.h"
#include "support/executor.h"
#include "support/table.h"
#include "validation/report.h"
#include "validation/selftest.h"

namespace {

using namespace fullweb;

void print_gate_table(const validation::ValidationReport& report,
                      bool verbose) {
  support::Table table({"gate", "observed", "lo", "hi", "verdict"});
  for (const auto* g : report.all_gates()) {
    if (!verbose && g->pass) continue;
    char observed[32], lo[32], hi[32];
    std::snprintf(observed, sizeof observed, "%.4f", g->observed);
    std::snprintf(lo, sizeof lo, "%.4f", g->lo);
    std::snprintf(hi, sizeof hi, "%.4f", g->hi);
    table.add_row({g->name, observed, lo, hi, g->pass ? "pass" : "FAIL"});
  }
  std::ostringstream out;
  table.print(out);
  std::fputs(out.str().c_str(), stdout);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  support::CliFlags flags;
  flags.define("profile", "smoke", "calibration profile: smoke | full");
  flags.define("threads", "0", "executor threads (0 = hardware concurrency)");
  flags.define("seed", "1592983569", "root seed (< 2^53)");
  flags.define("out", "validation_report.json",
               "report output path (empty = do not write)");
  flags.define("baseline", "", "baseline report to drift-check against");
  flags.define("baseline-rel-tol", "1e-6", "relative drift tolerance");
  flags.define("baseline-abs-tol", "1e-9", "absolute drift tolerance");
  flags.define("check-determinism", "false",
               "also run single-threaded and require byte-identical reports");
  flags.define("verbose", "false", "print passing gates too");
  if (!flags.parse(argc, argv)) return 2;

  validation::SelftestOptions options;
  const std::string profile = flags.get("profile");
  if (profile == "smoke") {
    options.profile = validation::Profile::kSmoke;
  } else if (profile == "full") {
    options.profile = validation::Profile::kFull;
  } else {
    std::fprintf(stderr, "fullweb_selftest: unknown profile '%s'\n",
                 profile.c_str());
    return 2;
  }
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed"));

  const auto threads = static_cast<std::size_t>(flags.get_int("threads"));
  support::Executor executor(threads);
  options.executor = &executor;

  std::printf("fullweb_selftest: profile=%s seed=%llu threads=%zu\n",
              profile.c_str(),
              static_cast<unsigned long long>(options.seed),
              executor.threads());

  const auto report = validation::run_selftest(options);
  const std::string json = validation::report_to_json(report);

  bool ok = report.pass();
  print_gate_table(report, flags.get_bool("verbose"));
  std::printf("%zu/%zu gates passed\n",
              report.all_gates().size() - report.failed_gates(),
              report.all_gates().size());

  if (flags.get_bool("check-determinism")) {
    // Rerun on a *different* thread count: 8 workers if the main run was
    // serial, serial otherwise — so the comparison is never vacuous.
    const std::size_t alt_threads = executor.threads() == 1 ? 8 : 1;
    support::Executor alt(alt_threads);
    validation::SelftestOptions alt_options = options;
    alt_options.executor = &alt;
    const auto alt_report = validation::run_selftest(alt_options);
    if (validation::report_to_json(alt_report) == json) {
      std::printf("determinism: %zu-thread report is byte-identical to "
                  "%zu-thread report\n", executor.threads(), alt.threads());
    } else {
      std::printf("determinism: FAIL — %zu-thread and %zu-thread reports "
                  "differ\n", executor.threads(), alt.threads());
      ok = false;
    }
  }

  const std::string baseline_path = flags.get("baseline");
  if (!baseline_path.empty()) {
    const std::string baseline_text = slurp(baseline_path);
    if (baseline_text.empty()) {
      std::fprintf(stderr, "fullweb_selftest: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    const auto drift = validation::check_against_baseline(
        baseline_text, json, flags.get_double("baseline-rel-tol"),
        flags.get_double("baseline-abs-tol"));
    if (!drift.ok()) {
      std::fprintf(stderr, "fullweb_selftest: %s\n",
                   drift.error().message.c_str());
      return 2;
    }
    for (const auto& finding : drift.value().findings) {
      if (finding.kind == "new") continue;  // informational
      std::printf("baseline %s: %s (%s)\n", finding.kind.c_str(),
                  finding.path.c_str(), finding.detail.c_str());
    }
    std::printf("baseline: %zu metrics compared, %zu drifted, %zu missing\n",
                drift.value().compared, drift.value().drifted,
                drift.value().missing);
    if (drift.value().failed()) ok = false;
  }

  const std::string out_path = flags.get("out");
  if (!out_path.empty()) {
    if (auto status = validation::write_report(report, out_path); !status.ok()) {
      std::fprintf(stderr, "fullweb_selftest: %s\n",
                   status.error().message.c_str());
      return 2;
    }
    std::printf("report written to %s\n", out_path.c_str());
  }

  std::printf("fullweb_selftest: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
