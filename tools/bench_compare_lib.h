// Benchmark-comparison logic behind the bench_compare CLI, extracted so the
// regression-gate semantics (missing baseline key = failure, threshold
// verdicts, unit normalization) are unit-testable instead of living only in
// a main().
//
// Matches benchmarks by name between two google-benchmark JSON documents,
// compares the chosen per-iteration time metric, and classifies each row.
// A baseline key absent from the new run is a hard failure: a rename or a
// silently dropped bench must not shrink the gate.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "support/result.h"

namespace fullweb::benchcmp {

struct BenchResult {
  double time = 0.0;  ///< chosen metric, normalized to ns/op
  double items_per_second = 0.0;
};

using BenchMap = std::map<std::string, BenchResult>;

/// Parse a google-benchmark-shaped JSON document (the string contents, not a
/// path). Aggregate rows (mean/median/stddev from --benchmark_repetitions)
/// are skipped so a repeated run still matches a plain baseline. Entries
/// missing both `metric` and the "real_time" fallback are skipped. Errors on
/// malformed JSON or a document without a "benchmarks" array.
[[nodiscard]] support::Result<BenchMap> parse_results(const std::string& text,
                                                      const std::string& metric);

/// parse_results over a file's contents; errors when the file cannot be read.
[[nodiscard]] support::Result<BenchMap> load_results(const std::string& path,
                                                     const std::string& metric);

enum class Verdict { kOk, kImproved, kRegression, kMissing, kNew };

struct CompareRow {
  std::string name;
  double base_time = 0.0;  ///< ns; 0 when verdict == kNew
  double new_time = 0.0;   ///< ns; 0 when verdict == kMissing
  double ratio = 0.0;      ///< new/base; 0 when either side is absent
  Verdict verdict = Verdict::kOk;
};

struct CompareReport {
  std::vector<CompareRow> rows;  ///< baseline order, then new-only benchmarks
  int compared = 0;
  int regressions = 0;
  int missing = 0;

  /// The CLI exit policy: nonzero when the gate must fail.
  [[nodiscard]] bool failed() const noexcept {
    return regressions > 0 || missing > 0;
  }
};

/// Compare two result maps with a relative regression threshold
/// (0.10 = +10% is the CLI default).
[[nodiscard]] CompareReport compare(const BenchMap& baseline,
                                    const BenchMap& fresh, double threshold);

/// Render the report as the classic bench_compare table.
[[nodiscard]] std::string render(const CompareReport& report, double threshold);

// ---------------------------------------------------------------------------
// --min-speedup mode: absolute floor on a single result file
//
// bench_parallel_scaling emits a "speedup" field per benchmark (plus
// "speedup_source": measured on hosts with enough cores, span-tree modeled
// otherwise). This gate checks those speedups against a floor instead of
// diffing two files — the scaling equivalent of the regression threshold.

struct SpeedupRow {
  std::string name;
  double speedup = 0.0;
  std::string source;  ///< "measured" / "modeled" / "" when unlabeled
  bool pass = false;
};

struct SpeedupReport {
  std::vector<SpeedupRow> rows;  ///< every matching benchmark, file order
  int checked = 0;
  int failures = 0;

  /// Exit policy: zero matching rows also fails — a rename or a dropped
  /// bench must not silently shrink the gate.
  [[nodiscard]] bool failed() const noexcept {
    return failures > 0 || checked == 0;
  }
};

/// Check every benchmark whose name contains `name_filter` (all rows when
/// empty) and that carries a "speedup" field against the floor. Text is the
/// JSON document contents; errors mirror parse_results.
[[nodiscard]] support::Result<SpeedupReport> check_min_speedup(
    const std::string& text, double min_speedup,
    const std::string& name_filter);

/// Render the speedup gate as a table.
[[nodiscard]] std::string render_speedup(const SpeedupReport& report,
                                         double min_speedup,
                                         const std::string& name_filter);

// ---------------------------------------------------------------------------
// Build-type detection
//
// A debug baseline makes a regression gate vacuous: any release run beats it,
// so real regressions sail through. google-benchmark's own
// context.library_build_type describes how *libbenchmark* was compiled (the
// system package reports "debug" even under -O2 -DNDEBUG), so the bench
// mains additionally stamp context.binary_build_type from NDEBUG, which
// describes the benchmark binary itself and takes precedence here.

/// Extract the build type from a google-benchmark JSON document's context:
/// "binary_build_type" when present, else "library_build_type", else ""
/// (unknown — old files without the custom stamp are not failed).
[[nodiscard]] std::string detect_build_type(const std::string& text);

/// True when `text`'s detected build type is "debug" — the condition under
/// which compare-mode and --check-release fail the gate.
[[nodiscard]] bool is_debug_build(const std::string& text);

}  // namespace fullweb::benchcmp
