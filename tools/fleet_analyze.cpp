// fleet_analyze: shard-and-merge FULL-Web analysis over many servers.
//
// Inputs are one dataset per shard, routed by extension: `.fwc` files load
// through the binary columnar store (no CLF parsing), anything else is
// ingested as CLF text via the streaming reader. `--synthetic N` generates
// N server shards instead (cycling the four calibrated profiles), which is
// how the determinism gate runs hermetically under ctest.
//
// The full fit pipeline runs per shard on one work-stealing executor;
// per-shard results merge into a fleet report (core/fleet.h). With
// `--check-determinism` the whole fleet analysis runs twice — serial and
// with `--threads` workers — and the two JSON reports must be
// byte-identical, exiting non-zero otherwise.
//
// `--online` switches to the streaming estimation layer (src/online):
// every shard's request stream replays through a per-shard OnlineAnalyzer
// emitting periodic rolling-window snapshots, and the per-shard tail
// sketches merge into one fleet-wide sketch whose Hill/LLCD/quantile
// estimates close the report. With `--check-determinism` the whole online
// pass reruns with the shard merge order REVERSED and the two documents
// must be byte-identical — the merge-law (associative + commutative)
// acceptance check at fleet scale.
//
//   fleet_analyze --synthetic 8 --fast --check-determinism --threads 8
//   fleet_analyze --synthetic 4 --online --check-determinism
//   fleet_analyze --json fleet.json logs/*.fwc
//   fleet_analyze --write-store /data/store logs/vhost*.log
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "online/analyzer.h"
#include "store/columnar.h"
#include "support/cli.h"
#include "support/executor.h"
#include "support/json.h"
#include "support/rng.h"
#include "synth/generator.h"
#include "synth/profile.h"
#include "tail/hill.h"
#include "tail/llcd.h"
#include "weblog/dataset.h"

namespace {

using fullweb::core::FleetOptions;
using fullweb::core::FleetReport;
using fullweb::weblog::Dataset;

std::string shard_basename(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base = base.substr(0, dot);
  return base;
}

fullweb::support::Result<std::vector<Dataset>> load_shards(
    const std::vector<std::string>& paths) {
  std::vector<Dataset> shards;
  shards.reserve(paths.size());
  for (const std::string& path : paths) {
    if (fullweb::store::has_columnar_extension(path)) {
      auto ds = Dataset::from_columnar(path);
      if (!ds.ok()) return ds.error();
      shards.push_back(std::move(ds).value());
    } else {
      const std::string clf_paths[] = {path};
      auto ds = Dataset::from_clf_stream(shard_basename(path), clf_paths);
      if (!ds.ok())
        return fullweb::support::Error{path + ": " + ds.error().message,
                                       ds.error().category};
      shards.push_back(std::move(ds).value());
    }
  }
  return shards;
}

std::vector<Dataset> synthesize_shards(std::size_t n, std::uint64_t seed,
                                       double hours, double scale) {
  std::vector<Dataset> shards;
  const auto profiles = fullweb::synth::ServerProfile::all_four();
  for (std::size_t i = 0; i < n; ++i) {
    fullweb::support::Rng rng(seed + i);
    fullweb::synth::GeneratorOptions opt;
    opt.duration = hours * 3600.0;
    opt.scale = scale;
    opt.start_time = 1073865600.0 + static_cast<double>(i) * opt.duration;
    auto ds = fullweb::synth::generate_dataset(profiles[i % profiles.size()],
                                               opt, rng);
    if (!ds.ok()) {
      std::fprintf(stderr, "synthetic shard %zu: %s\n", i,
                   ds.error().message.c_str());
      continue;
    }
    shards.push_back(std::move(ds).value());
  }
  return shards;
}

FleetOptions make_options(fullweb::support::Executor* ex, bool fast,
                          double interval_hours) {
  FleetOptions opt;
  opt.executor = ex;
  opt.fit.interval_seconds = interval_hours * 3600.0;
  if (fast) {
    opt.fit.run_poisson = false;
    opt.fit.run_error_analysis = false;
    opt.fit.arrivals.run_aggregation_sweep = false;
    opt.fit.arrivals.hurst.run_whittle = false;
    opt.fit.tails.run_curvature = false;
  }
  return opt;
}

void print_summary(const FleetReport& r) {
  std::printf("fleet: %zu shards, %zu requests, %zu sessions, %.1f MB\n",
              r.shards.size(), r.total_requests, r.total_sessions,
              static_cast<double>(r.total_bytes) / (1024.0 * 1024.0));
  std::printf("  window      [%.0f, %.0f)\n", r.t0, r.t1);
  std::printf("  LRD         requests %zu/%zu shards, sessions %zu/%zu\n",
              r.shards_lrd_requests, r.shards.size(), r.shards_lrd_sessions,
              r.shards.size());
  std::printf("  heavy tail  bytes/session on %zu/%zu shards\n",
              r.shards_heavy_tail_bytes, r.shards.size());
  std::printf("  mean H      requests %.3f, sessions %.3f\n", r.mean_request_h,
              r.mean_session_h);
  std::printf("  req/s       mean %.3f var %.3f max %.0f\n", r.rps.mean,
              r.rps.variance(), r.rps.max);
  for (const auto& s : r.shards)
    std::printf("  shard %-20s %8zu req %6zu sess  H(req) %.3f%s\n",
                s.name.c_str(), s.requests, s.sessions,
                s.model.request_arrivals.hurst_stationary.mean_h(),
                s.model.request_arrivals.long_range_dependent() ? "  LRD" : "");
}

/// The streaming counterpart of analyze_fleet: per-shard OnlineAnalyzers
/// with RngSplitter-carved identity streams, periodic snapshots, and a
/// fleet-merged tail sketch. `reverse_merge` only changes the order the
/// per-shard sketches fold into the fleet sketch; by the sketch's merge
/// laws the output must not change, which the determinism check exploits.
std::string run_online_fleet(const std::vector<Dataset>& shards,
                             std::uint64_t seed,
                             std::size_t snapshots_per_shard,
                             bool reverse_merge) {
  namespace online = fullweb::online;
  namespace support = fullweb::support;
  namespace tail = fullweb::tail;

  const online::OnlineOptions opts;  // production defaults
  support::Rng root(seed);
  support::RngSplitter streams(root, 0);

  support::JsonWriter w;
  w.begin_object();
  w.field("schema", "fullweb-fleet-online-v1");
  w.field("seed", static_cast<std::size_t>(seed));
  w.field("shards", shards.size());

  // Shards are always analyzed (and reported) in input order; carving each
  // analyzer's rng by shard index keeps sketch identity salts disjoint
  // across shards, so the fleet merge never conflates items.
  std::vector<online::TailSketch> sketches;
  sketches.reserve(shards.size());
  w.key("shard_reports");
  w.begin_array();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    online::OnlineAnalyzer analyzer(opts, streams.stream(i));
    const auto& requests = shards[i].requests();
    const std::size_t stride =
        std::max<std::size_t>(1, requests.size() / (snapshots_per_shard + 1));

    w.begin_object();
    w.field("name", shards[i].name());
    w.field("requests", requests.size());
    w.key("snapshots");
    w.begin_array();
    std::size_t emitted = 0;
    for (std::size_t j = 0; j < requests.size(); ++j) {
      analyzer.add(requests[j].time, static_cast<double>(requests[j].bytes));
      if ((j + 1) % stride == 0 && emitted < snapshots_per_shard) {
        analyzer.snapshot().write_json(w);
        ++emitted;
      }
    }
    w.end_array();
    w.key("final");
    analyzer.snapshot().write_json(w);
    w.end_object();
    sketches.push_back(analyzer.sketch());
  }
  w.end_array();

  online::TailSketch fleet(opts.tail_top_k, opts.tail_body_capacity);
  for (std::size_t i = 0; i < sketches.size(); ++i) {
    const std::size_t pick = reverse_merge ? sketches.size() - 1 - i : i;
    if (auto merged = fleet.merge(sketches[pick]); !merged.ok())
      std::fprintf(stderr, "fleet_analyze: sketch merge: %s\n",
                   merged.error().message.c_str());
  }

  w.key("fleet_tail");
  w.begin_object();
  w.field("count", static_cast<std::size_t>(fleet.count()));
  w.field("rejected", static_cast<std::size_t>(fleet.rejected()));
  w.field("retained", fleet.retained());
  w.field("min", fleet.min());
  w.field("max", fleet.max());
  w.key("hill");
  const auto top = fleet.top_values();
  const auto plot = tail::hill_plot_from_top(
      top, static_cast<std::size_t>(fleet.count()));
  const auto hill =
      plot.ok() ? tail::hill_estimate_from_plot(plot.value())
                : support::Result<tail::HillEstimate>(plot.error());
  if (hill.ok()) {
    w.begin_object();
    w.field("alpha", hill.value().alpha);
    w.field("k_low", hill.value().k_low);
    w.field("k_high", hill.value().k_high);
    w.field("stabilized", hill.value().stabilized);
    w.end_object();
  } else {
    w.begin_object();
    w.field("error", hill.error().message);
    w.end_object();
  }
  w.key("llcd");
  support::Rng sample_rng = streams.stream(shards.size());
  const auto sample = fleet.sample_values(opts.tail_subsample, sample_rng);
  if (const auto llcd = tail::llcd_fit(sample); llcd.ok()) {
    w.begin_object();
    w.field("alpha", llcd.value().alpha);
    w.field("stderr_alpha", llcd.value().stderr_alpha);
    w.field("r_squared", llcd.value().r_squared);
    w.end_object();
  } else {
    w.begin_object();
    w.field("error", llcd.error().message);
    w.end_object();
  }
  w.key("quantiles");
  w.begin_object();
  w.field("p50", fleet.quantile(0.50));
  w.field("p90", fleet.quantile(0.90));
  w.field("p99", fleet.quantile(0.99));
  w.end_object();
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

}  // namespace

int main(int argc, char** argv) {
  fullweb::support::CliFlags flags;
  flags.define("synthetic", "0", "generate N synthetic shards instead of reading inputs");
  flags.define("seed", "12345", "master RNG seed (also seeds synthetic shards)");
  flags.define("threads", "0", "executor threads (0 = hardware)");
  flags.define("interval-hours", "4", "Low/Med/High interval length");
  flags.define("hours", "3", "synthetic shard duration (hours)");
  flags.define("scale", "0.5", "synthetic profile volume scale");
  flags.define("fast", "false", "skip Monte-Carlo branches (poisson, curvature, sweeps)");
  flags.define("json", "", "write the fleet report JSON to this path ('-' = stdout)");
  flags.define("no-shards", "false", "omit the per-shard array from the JSON");
  flags.define("write-store", "", "also write each shard to DIR/<name>.fwc");
  flags.define("check-determinism", "false",
               "run serial and with --threads, require byte-identical reports");
  flags.define("online", "false",
               "stream shards through the online estimation layer instead of "
               "the batch fit pipeline");
  flags.define("online-snapshots", "4",
               "periodic rolling-window snapshots per shard in --online mode");
  if (!flags.parse(argc, argv)) return 2;

  const auto n_synth = static_cast<std::size_t>(flags.get_int("synthetic"));
  std::vector<Dataset> shards;
  if (n_synth > 0) {
    shards = synthesize_shards(n_synth, static_cast<std::uint64_t>(
                                            flags.get_int("seed")),
                               flags.get_double("hours"),
                               flags.get_double("scale"));
  } else {
    auto loaded = load_shards(flags.positional());
    if (!loaded.ok()) {
      std::fprintf(stderr, "fleet_analyze: %s\n", loaded.error().message.c_str());
      return 1;
    }
    shards = std::move(loaded).value();
  }
  if (shards.empty()) {
    std::fprintf(stderr, "fleet_analyze: no shards (pass inputs or --synthetic N)\n");
    return 1;
  }

  const std::string store_dir = flags.get("write-store");
  if (!store_dir.empty()) {
    for (const Dataset& ds : shards) {
      const std::string out = store_dir + "/" + ds.name() + ".fwc";
      auto written = ds.to_columnar(out);
      if (!written.ok()) {
        std::fprintf(stderr, "fleet_analyze: %s\n",
                     written.error().message.c_str());
        return 1;
      }
      std::fprintf(stderr, "wrote %s (%llu bytes)\n", out.c_str(),
                   static_cast<unsigned long long>(written.value()));
    }
  }

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  const auto threads = static_cast<std::size_t>(flags.get_int("threads"));
  const bool fast = flags.get_bool("fast");
  const double interval_hours = flags.get_double("interval-hours");
  const bool include_shards = !flags.get_bool("no-shards");

  if (flags.get_bool("online")) {
    const auto snapshots =
        static_cast<std::size_t>(flags.get_int("online-snapshots"));
    const std::string json = run_online_fleet(shards, seed, snapshots, false);
    if (flags.get_bool("check-determinism")) {
      const std::string replay = run_online_fleet(shards, seed, snapshots, true);
      if (json != replay) {
        std::fprintf(stderr,
                     "fleet_analyze: NONDETERMINISM — reversed-merge online "
                     "report differs from forward-merge report\n");
        return 3;
      }
      std::fprintf(stderr,
                   "determinism: forward- and reverse-merge online reports "
                   "are byte-identical (%zu bytes)\n",
                   json.size());
    }
    std::printf("fleet online: %zu shards analyzed\n", shards.size());
    const std::string online_path = flags.get("json");
    if (online_path == "-") {
      std::fputs(json.c_str(), stdout);
      std::fputc('\n', stdout);
    } else if (!online_path.empty()) {
      std::ofstream os(online_path, std::ios::binary | std::ios::trunc);
      os << json << '\n';
      if (!os) {
        std::fprintf(stderr, "fleet_analyze: cannot write %s\n",
                     online_path.c_str());
        return 1;
      }
    }
    return 0;
  }

  fullweb::support::Executor pool(threads == 0 ? 0 : threads);
  fullweb::support::Rng rng(seed);
  auto report =
      fullweb::core::analyze_fleet(shards, rng, make_options(&pool, fast, interval_hours));
  if (!report.ok()) {
    std::fprintf(stderr, "fleet_analyze: %s\n", report.error().message.c_str());
    return 1;
  }
  const std::string json =
      fullweb::core::fleet_report_json(report.value(), include_shards);

  if (flags.get_bool("check-determinism")) {
    fullweb::support::Executor serial(1);
    fullweb::support::Rng rng2(seed);
    auto replay = fullweb::core::analyze_fleet(
        shards, rng2, make_options(&serial, fast, interval_hours));
    if (!replay.ok()) {
      std::fprintf(stderr, "fleet_analyze: serial replay failed: %s\n",
                   replay.error().message.c_str());
      return 1;
    }
    const std::string json2 =
        fullweb::core::fleet_report_json(replay.value(), include_shards);
    if (json != json2) {
      std::fprintf(stderr,
                   "fleet_analyze: NONDETERMINISM — %zu-thread and serial "
                   "reports differ\n",
                   pool.threads());
      return 3;
    }
    std::fprintf(stderr, "determinism: %zu-thread and serial reports are "
                         "byte-identical (%zu bytes)\n",
                 pool.threads(), json.size());
  }

  print_summary(report.value());
  const std::string json_path = flags.get("json");
  if (json_path == "-") {
    std::fputs(json.c_str(), stdout);
    std::fputc('\n', stdout);
  } else if (!json_path.empty()) {
    std::ofstream os(json_path, std::ios::binary | std::ios::trunc);
    os << json << '\n';
    if (!os) {
      std::fprintf(stderr, "fleet_analyze: cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
