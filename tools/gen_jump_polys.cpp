// Offline generator for the jump polynomials hardcoded in support/rng.h.
//
// A jump of 2^e steps of the xoshiro256 state transition T is applied as the
// polynomial q_e(x) = x^(2^e) mod p(x), where p is the characteristic
// polynomial of T (a primitive degree-256 polynomial over GF(2), since
// xoshiro256 has maximal period). This program recovers p via
// Berlekamp-Massey on the scalar sequence <u, T^i v>, computes q_e by
// repeated modular squaring, and prints the four 64-bit words that
// Rng::apply_jump consumes (coefficient of x^(64*w + b) = bit b of word w).
//
// Self-checks, all fatal on mismatch:
//   * deg p == 256 and p(T) annihilates random states,
//   * q_128 and q_192 reproduce the constants published by Blackman & Vigna
//     (Rng::jump / Rng::long_jump), which validates the whole pipeline,
//   * applying q_e twice equals applying q_{e+1} once on random states.
//
// Build & run:  c++ -O2 -std=c++20 -o gen_jump_polys gen_jump_polys.cpp
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace {

using u64 = std::uint64_t;
using State = std::array<u64, 4>;

constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

/// One step of the xoshiro256 state transition (linear over GF(2); the ++
/// output scrambler does not touch the state and is irrelevant here).
void step(State& s) {
  const u64 t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = rotl(s[3], 45);
}

u64 splitmix(u64& x) {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

State random_state(u64& seed) {
  return {splitmix(seed), splitmix(seed), splitmix(seed), splitmix(seed)};
}

int parity(const State& a, const State& b) {
  u64 acc = 0;
  for (int i = 0; i < 4; ++i) acc ^= a[i] & b[i];
  return __builtin_parityll(acc);
}

/// Berlekamp-Massey over GF(2): shortest LFSR C (C[0] = 1) with
/// sum_j C[j] s[i-j] = 0 for all i >= L. Returns C; degree via L.
std::vector<int> berlekamp_massey(const std::vector<int>& s, int& L_out) {
  const int n = static_cast<int>(s.size());
  std::vector<int> C(n + 1, 0), B(n + 1, 0);
  C[0] = B[0] = 1;
  int L = 0, m = 1;
  for (int i = 0; i < n; ++i) {
    int d = 0;
    for (int j = 0; j <= L; ++j) d ^= C[j] & s[i - j];
    if (d == 0) {
      ++m;
    } else if (2 * L <= i) {
      std::vector<int> T = C;
      for (int j = 0; j + m <= n; ++j) C[j + m] ^= B[j];
      L = i + 1 - L;
      B = T;
      m = 1;
    } else {
      for (int j = 0; j + m <= n; ++j) C[j + m] ^= B[j];
      ++m;
    }
  }
  L_out = L;
  return C;
}

/// Bit-packed polynomial over GF(2), coefficient of x^i = bit i.
struct Poly {
  std::vector<u64> w;
  Poly() : w(4, 0) {}
  explicit Poly(int bits) : w((bits + 63) / 64, 0) {}
  bool get(int i) const { return (w[i / 64] >> (i % 64)) & 1; }
  void set(int i) { w[i / 64] |= 1ULL << (i % 64); }
};

/// r = r^2 mod p, with deg p == 256 (p has 257 bits). r keeps 256 bits.
void square_mod(Poly& r, const Poly& p) {
  Poly sq(512);
  for (int i = 0; i < 256; ++i)
    if (r.get(i)) sq.set(2 * i);
  for (int j = 510; j >= 256; --j) {
    if (!sq.get(j)) continue;
    const int shift = j - 256;
    for (int k = 0; k <= 256; ++k)
      if (p.get(k)) sq.w[(k + shift) / 64] ^= 1ULL << ((k + shift) % 64);
  }
  for (int i = 0; i < 4; ++i) r.w[i] = sq.w[i];
}

/// Apply the jump polynomial q to a state: acc = sum_{i: q_i = 1} T^i s,
/// exactly the loop Rng::apply_jump runs.
State apply_poly(const Poly& q, State s) {
  State acc{};
  const int bits = static_cast<int>(q.w.size()) * 64;
  for (int i = 0; i < bits; ++i) {
    if (q.get(i))
      for (int k = 0; k < 4; ++k) acc[k] ^= s[k];
    step(s);
  }
  return acc;
}

void die(const char* msg) {
  std::fprintf(stderr, "FATAL: %s\n", msg);
  std::exit(1);
}

}  // namespace

int main() {
  // --- characteristic polynomial via Berlekamp-Massey --------------------
  u64 seed = 0x853c49e6748fea9bULL;
  Poly p(257);
  int deg = 0;
  for (int attempt = 0; attempt < 8 && deg != 256; ++attempt) {
    const State u = random_state(seed);
    State v = random_state(seed);
    std::vector<int> s(512);
    for (int i = 0; i < 512; ++i) {
      s[i] = parity(u, v);
      step(v);
    }
    int L = 0;
    const std::vector<int> C = berlekamp_massey(s, L);
    if (L != 256) continue;  // unlucky u, v: sequence minpoly was a divisor
    // The connection polynomial is the reversal of the minimal polynomial:
    // p_k = C[L - k].
    p = Poly(257);
    for (int k = 0; k <= 256; ++k)
      if (C[256 - k]) p.set(k);
    deg = 256;
  }
  if (deg != 256) die("Berlekamp-Massey never reached degree 256");

  // p(T) must annihilate every state (Cayley-Hamilton).
  for (int trial = 0; trial < 4; ++trial) {
    const State z = apply_poly(p, random_state(seed));
    if (z[0] | z[1] | z[2] | z[3]) die("p(T) does not annihilate states");
  }

  // --- q_e = x^(2^e) mod p for every exponent rng.h uses -----------------
  constexpr std::array<u64, 4> kPublishedJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  constexpr std::array<u64, 4> kPublishedLongJump = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};

  Poly q(256);
  q.set(1);  // x
  std::array<Poly, 256> by_exp{};  // q_e for e = 1..255, filled as we square
  int e = 0;
  std::vector<int> wanted = {96, 128, 160, 192, 224};
  for (e = 1; e <= 225; ++e) {
    square_mod(q, p);
    for (int w : wanted)
      if (e == w || e == w + 1) by_exp[e] = q;
  }

  auto words = [](const Poly& poly) { return poly.w; };
  if (words(by_exp[128]) != std::vector<u64>(kPublishedJump.begin(),
                                             kPublishedJump.end()))
    die("q_128 != published jump() constants");
  if (words(by_exp[192]) != std::vector<u64>(kPublishedLongJump.begin(),
                                             kPublishedLongJump.end()))
    die("q_192 != published long_jump() constants");

  // Doubling check: q_e twice == q_{e+1} once.
  for (int w : wanted) {
    const State s0 = random_state(seed);
    const State twice = apply_poly(by_exp[w], apply_poly(by_exp[w], s0));
    const State once = apply_poly(by_exp[w + 1], s0);
    if (twice != once) die("q_e^2 != q_{e+1}");
  }

  for (int w : wanted) {
    std::printf("x^(2^%d) mod p:\n  {", w);
    const auto& ws = by_exp[w].w;
    for (int i = 0; i < 4; ++i)
      std::printf("0x%016llxULL%s", static_cast<unsigned long long>(ws[i]),
                  i < 3 ? ", " : "}\n");
  }
  std::puts("all self-checks passed");
  return 0;
}
