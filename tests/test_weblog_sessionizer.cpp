#include "weblog/sessionizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "support/rng.h"

namespace fullweb::weblog {
namespace {

Request req(double time, std::uint32_t client, std::uint64_t bytes = 100) {
  Request r;
  r.time = time;
  r.client = client;
  r.bytes = bytes;
  return r;
}

TEST(Sessionizer, SingleClientSingleSession) {
  const std::vector<Request> rs = {req(0, 1), req(60, 1), req(120, 1)};
  const auto sessions = sessionize(rs);
  ASSERT_EQ(sessions.size(), 1U);
  EXPECT_EQ(sessions[0].client, 1U);
  EXPECT_DOUBLE_EQ(sessions[0].start, 0.0);
  EXPECT_DOUBLE_EQ(sessions[0].end, 120.0);
  EXPECT_EQ(sessions[0].requests, 3U);
  EXPECT_EQ(sessions[0].bytes, 300U);
  EXPECT_DOUBLE_EQ(sessions[0].length(), 120.0);
}

TEST(Sessionizer, GapAboveThresholdSplits) {
  const std::vector<Request> rs = {req(0, 1), req(1800, 1), req(3601, 1)};
  // Gap 0->1800 == threshold: same session; 1800->3601 = 1801 > threshold.
  const auto sessions = sessionize(rs);
  ASSERT_EQ(sessions.size(), 2U);
  EXPECT_EQ(sessions[0].requests, 2U);
  EXPECT_EQ(sessions[1].requests, 1U);
  EXPECT_DOUBLE_EQ(sessions[1].start, 3601.0);
}

TEST(Sessionizer, ExactThresholdStaysTogether) {
  const std::vector<Request> rs = {req(0, 1), req(1800, 1)};
  EXPECT_EQ(sessionize(rs).size(), 1U);
  const std::vector<Request> rs2 = {req(0, 1), req(1800.5, 1)};
  EXPECT_EQ(sessionize(rs2).size(), 2U);
}

TEST(Sessionizer, CustomThreshold) {
  const std::vector<Request> rs = {req(0, 1), req(100, 1), req(250, 1)};
  SessionizerOptions opts;
  opts.threshold_seconds = 120.0;
  const auto sessions = sessionize(rs, opts);
  ASSERT_EQ(sessions.size(), 2U);  // 100->250 gap of 150 splits
}

TEST(Sessionizer, ThresholdSensitivity) {
  // The paper's [12] observation: smaller thresholds produce more sessions.
  std::vector<Request> rs;
  for (int i = 0; i < 100; ++i) rs.push_back(req(i * 400.0, 7));
  SessionizerOptions tight{300.0};
  SessionizerOptions loose{500.0};
  EXPECT_GT(sessionize(rs, tight).size(), sessionize(rs, loose).size());
  EXPECT_EQ(sessionize(rs, loose).size(), 1U);
  EXPECT_EQ(sessionize(rs, tight).size(), 100U);
}

TEST(Sessionizer, InterleavedClientsSeparated) {
  const std::vector<Request> rs = {req(0, 1), req(1, 2), req(2, 1), req(3, 2)};
  const auto sessions = sessionize(rs);
  ASSERT_EQ(sessions.size(), 2U);
  EXPECT_EQ(sessions[0].client, 1U);
  EXPECT_EQ(sessions[0].requests, 2U);
  EXPECT_EQ(sessions[1].client, 2U);
}

TEST(Sessionizer, UnsortedInputHandled) {
  std::vector<Request> rs = {req(120, 1), req(0, 1), req(60, 1)};
  const auto sessions = sessionize(rs);
  ASSERT_EQ(sessions.size(), 1U);
  EXPECT_DOUBLE_EQ(sessions[0].start, 0.0);
  EXPECT_DOUBLE_EQ(sessions[0].end, 120.0);
}

TEST(Sessionizer, ShuffleInvariance) {
  support::Rng rng(1);
  std::vector<Request> rs;
  for (std::uint32_t c = 0; c < 20; ++c) {
    double t = rng.uniform(0, 1000);
    for (int i = 0; i < 30; ++i) {
      rs.push_back(req(t, c, c + 1));
      t += rng.uniform(1, 4000);
    }
  }
  auto baseline = sessionize(rs);
  // Fisher-Yates shuffle and re-run.
  for (std::size_t i = rs.size(); i > 1; --i)
    std::swap(rs[i - 1], rs[rng.below(i)]);
  const auto shuffled = sessionize(rs);
  ASSERT_EQ(shuffled.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(shuffled[i].client, baseline[i].client);
    EXPECT_DOUBLE_EQ(shuffled[i].start, baseline[i].start);
    EXPECT_EQ(shuffled[i].requests, baseline[i].requests);
    EXPECT_EQ(shuffled[i].bytes, baseline[i].bytes);
  }
}

TEST(Sessionizer, OutputSortedByStart) {
  const std::vector<Request> rs = {req(100, 2), req(0, 1), req(50, 3)};
  const auto sessions = sessionize(rs);
  ASSERT_EQ(sessions.size(), 3U);
  EXPECT_TRUE(std::is_sorted(
      sessions.begin(), sessions.end(),
      [](const Session& a, const Session& b) { return a.start < b.start; }));
}

TEST(Sessionizer, ConservationInvariants) {
  // Total requests and bytes are preserved exactly.
  support::Rng rng(2);
  std::vector<Request> rs;
  std::uint64_t total_bytes = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto bytes = rng.below(10000);
    rs.push_back(req(rng.uniform(0, 7 * 86400.0),
                     static_cast<std::uint32_t>(rng.below(200)), bytes));
    total_bytes += bytes;
  }
  const auto sessions = sessionize(rs);
  std::uint64_t session_requests = 0;
  std::uint64_t session_bytes = 0;
  for (const auto& s : sessions) {
    session_requests += s.requests;
    session_bytes += s.bytes;
    EXPECT_GE(s.end, s.start);
  }
  EXPECT_EQ(session_requests, rs.size());
  EXPECT_EQ(session_bytes, total_bytes);
}

TEST(Sessionizer, EmptyInput) {
  EXPECT_TRUE(sessionize({}).empty());
}

TEST(Sessionizer, RequestIndexCoversFullSizeT) {
  // Regression: the index array was std::uint32_t, silently wrapping past
  // 2^32 requests. A trace that large cannot run in a unit test, so pin
  // the type: it must address the whole of size_t's range.
  static_assert(std::is_same_v<RequestIndex, std::size_t>,
                "sessionizer indices must not truncate large traces");
  static_assert(sizeof(RequestIndex) >= sizeof(std::size_t));
  SUCCEED();
}

TEST(Sessionizer, CanonicalOrderBreaksStartTiesByClient) {
  // Equal start times order by client id — the total order shared with the
  // streaming sessionizer (what makes the two paths bit-identical).
  const std::vector<Request> rs = {req(10, 5), req(10, 1), req(10, 3)};
  const auto sessions = sessionize(rs);
  ASSERT_EQ(sessions.size(), 3U);
  EXPECT_EQ(sessions[0].client, 1U);
  EXPECT_EQ(sessions[1].client, 3U);
  EXPECT_EQ(sessions[2].client, 5U);
}

TEST(Sessionizer, SingleRequestSessionHasZeroLength) {
  const auto sessions = sessionize(std::vector<Request>{req(42.0, 9, 7)});
  ASSERT_EQ(sessions.size(), 1U);
  EXPECT_DOUBLE_EQ(sessions[0].length(), 0.0);
  EXPECT_EQ(sessions[0].requests, 1U);
  EXPECT_EQ(sessions[0].bytes, 7U);
}

TEST(Sessionizer, SameTimestampRequestsGrouped) {
  // 1-second log granularity makes identical timestamps common.
  const std::vector<Request> rs = {req(10, 1), req(10, 1), req(10, 1)};
  const auto sessions = sessionize(rs);
  ASSERT_EQ(sessions.size(), 1U);
  EXPECT_EQ(sessions[0].requests, 3U);
}

}  // namespace
}  // namespace fullweb::weblog
