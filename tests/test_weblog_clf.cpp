#include "weblog/clf.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace fullweb::weblog {
namespace {

TEST(ClfTimestamp, RoundTripsEpoch) {
  // 12-Jan-2004 00:00:00 UTC.
  const double epoch = 1073865600.0;
  const std::string text = format_clf_timestamp(epoch);
  EXPECT_EQ(text, "[12/Jan/2004:00:00:00 +0000]");
  const auto back = parse_clf_timestamp(text);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back.value(), epoch);
}

TEST(ClfTimestamp, KnownHistoricDate) {
  // The ClarkNet trace week: 28-Aug-1995.
  const auto t = parse_clf_timestamp("[28/Aug/1995:00:00:00 +0000]");
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t.value(), 809568000.0);
}

TEST(ClfTimestamp, TimezoneOffsetsApplied) {
  const auto utc = parse_clf_timestamp("[10/Oct/2000:13:55:36 +0000]");
  const auto pst = parse_clf_timestamp("[10/Oct/2000:13:55:36 -0700]");
  const auto cet = parse_clf_timestamp("[10/Oct/2000:13:55:36 +0100]");
  ASSERT_TRUE(utc.ok());
  ASSERT_TRUE(pst.ok());
  ASSERT_TRUE(cet.ok());
  EXPECT_DOUBLE_EQ(pst.value(), utc.value() + 7 * 3600.0);
  EXPECT_DOUBLE_EQ(cet.value(), utc.value() - 3600.0);
}

TEST(ClfTimestamp, LeapYearHandled) {
  const auto feb29 = parse_clf_timestamp("[29/Feb/2004:12:00:00 +0000]");
  ASSERT_TRUE(feb29.ok());
  const auto mar1 = parse_clf_timestamp("[01/Mar/2004:12:00:00 +0000]");
  ASSERT_TRUE(mar1.ok());
  EXPECT_DOUBLE_EQ(mar1.value() - feb29.value(), 86400.0);
}

TEST(ClfTimestamp, RejectsMalformed) {
  EXPECT_FALSE(parse_clf_timestamp("[12/Jxx/2004:00:00:00 +0000]").ok());
  EXPECT_FALSE(parse_clf_timestamp("[12-Jan-2004]").ok());
  EXPECT_FALSE(parse_clf_timestamp("").ok());
  EXPECT_FALSE(parse_clf_timestamp("[aa/Jan/2004:00:00:00 +0000]").ok());
}

TEST(ParseClfLine, CanonicalApacheExample) {
  const auto e = parse_clf_line(
      "127.0.0.1 - frank [10/Oct/2000:13:55:36 -0700] "
      "\"GET /apache_pb.gif HTTP/1.0\" 200 2326");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().client, "127.0.0.1");
  EXPECT_EQ(e.value().method, "GET");
  EXPECT_EQ(e.value().path, "/apache_pb.gif");
  EXPECT_EQ(e.value().protocol, "HTTP/1.0");
  EXPECT_EQ(e.value().status, 200);
  EXPECT_EQ(e.value().bytes, 2326U);
}

TEST(ParseClfLine, CombinedFormatTrailersIgnored) {
  const auto e = parse_clf_line(
      "10.0.0.1 - - [12/Jan/2004:08:30:00 +0000] \"GET /index.html HTTP/1.1\" "
      "200 512 \"http://referer.example/\" \"Mozilla/4.08\"");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().bytes, 512U);
  EXPECT_EQ(e.value().status, 200);
}

TEST(ParseClfLine, DashBytesBecomesZero) {
  const auto e = parse_clf_line(
      "10.0.0.1 - - [12/Jan/2004:08:30:00 +0000] \"GET /x HTTP/1.0\" 304 -");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().bytes, 0U);
  EXPECT_EQ(e.value().status, 304);
}

TEST(ParseClfLine, EmptyRequestLine) {
  const auto e = parse_clf_line(
      "10.0.0.1 - - [12/Jan/2004:08:30:00 +0000] \"-\" 408 -");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(e.value().method.empty());
}

TEST(ParseClfLine, Http09RequestWithoutProtocol) {
  const auto e = parse_clf_line(
      "host - - [28/Aug/1995:00:00:01 +0000] \"GET /\" 200 100");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().method, "GET");
  EXPECT_EQ(e.value().path, "/");
  EXPECT_TRUE(e.value().protocol.empty());
}

TEST(ParseClfLine, SanitizedHostIdentifiers) {
  // NASA-Pub2 logs replace IPs with opaque ids — any token must work.
  const auto e = parse_clf_line(
      "user_4711 - - [12/Apr/2004:10:00:00 +0000] \"GET /doc.pdf HTTP/1.1\" "
      "200 9999");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().client, "user_4711");
}

TEST(ParseClfLine, RejectsStructurallyBroken) {
  EXPECT_FALSE(parse_clf_line("").ok());
  EXPECT_FALSE(parse_clf_line("onlyhost").ok());
  EXPECT_FALSE(parse_clf_line("h - - not-a-timestamp \"GET /\" 200 1").ok());
  EXPECT_FALSE(
      parse_clf_line("h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" xx 1").ok());
  EXPECT_FALSE(
      parse_clf_line("h - - [12/Jan/2004:08:30:00 +0000] \"unterminated 200 1")
          .ok());
  EXPECT_FALSE(
      parse_clf_line("h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200").ok());
}

TEST(ParseClfLine, EscapedQuotesInsideRequestHonored) {
  // Regression: find('"', 1) used to stop at the escaped quote, truncating
  // the request and rejecting the (valid) line on the leftover text.
  const auto e = parse_clf_line(
      "10.0.0.1 - - [12/Jan/2004:08:30:00 +0000] "
      "\"GET /file\\\"name\\\".html HTTP/1.0\" 200 99");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().method, "GET");
  EXPECT_EQ(e.value().path, "/file\"name\".html");
  EXPECT_EQ(e.value().protocol, "HTTP/1.0");
  EXPECT_EQ(e.value().status, 200);
  EXPECT_EQ(e.value().bytes, 99U);
}

TEST(ClfTimestamp, RejectsOutOfRangeFields) {
  // Regression: these used to wrap silently into a wrong epoch.
  EXPECT_FALSE(parse_clf_timestamp("[32/Jan/2004:00:00:00 +0000]").ok());
  EXPECT_FALSE(parse_clf_timestamp("[12/Jan/2004:25:00:00 +0000]").ok());
  EXPECT_FALSE(parse_clf_timestamp("[12/Jan/2004:00:61:00 +0000]").ok());
  EXPECT_FALSE(parse_clf_timestamp("[12/Jan/2004:00:00:61 +0000]").ok());
  EXPECT_FALSE(parse_clf_timestamp("[12/Jan/2004:00:00:00 +9999]").ok());
  EXPECT_FALSE(parse_clf_timestamp("[29/Feb/2003:00:00:00 +0000]").ok());
}

TEST(ClfTimestamp, RejectsTruncatedTimezoneOffsets) {
  // Regression: lengths between "no offset" (20) and a full "+HHMM" (26)
  // used to fall through to the lenient tail and parse as UTC.
  EXPECT_FALSE(parse_clf_timestamp("[12/Jan/2004:08:30:00 +05]").ok());
  EXPECT_FALSE(parse_clf_timestamp("[12/Jan/2004:08:30:00 +]").ok());
  EXPECT_FALSE(parse_clf_timestamp("[12/Jan/2004:08:30:00 +000]").ok());
  EXPECT_FALSE(parse_clf_timestamp("[12/Jan/2004:08:30:00 -1]").ok());
  // Separator at index 20 must be a space; the sign must be +/-.
  EXPECT_FALSE(parse_clf_timestamp("[12/Jan/2004:08:30:00+0000]").ok());
  EXPECT_FALSE(parse_clf_timestamp("[12/Jan/2004:08:30:00 ~0000]").ok());
  EXPECT_FALSE(parse_clf_timestamp("[12/Jan/2004:08:30:00 +00a0]").ok());
  // Omitting the offset entirely is still legal (defaults to UTC).
  const auto bare = parse_clf_timestamp("[12/Jan/2004:08:30:00]");
  const auto utc = parse_clf_timestamp("[12/Jan/2004:08:30:00 +0000]");
  ASSERT_TRUE(bare.ok());
  ASSERT_TRUE(utc.ok());
  EXPECT_DOUBLE_EQ(bare.value(), utc.value());
}

TEST(ParseClfLine, RejectsNonHttpStatusCodes) {
  // Regression: any parse_int-able token used to pass as a status.
  const auto line = [](const char* st) {
    return std::string("h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" ") + st +
           " 1";
  };
  ClfParseReason reason = ClfParseReason::kNone;
  for (const char* st : {"-5", "9999999", "99", "600", "0200", "20x"}) {
    EXPECT_FALSE(parse_clf_line(line(st), &reason).ok()) << st;
    EXPECT_EQ(reason, ClfParseReason::kBadStatus) << st;
  }
  for (const char* st : {"100", "200", "404", "599"})
    EXPECT_TRUE(parse_clf_line(line(st)).ok()) << st;
}

TEST(ToClfLine, EscapesQuotesAndBackslashesInRequest) {
  LogEntry e;
  e.timestamp = 1073865600.0;
  e.client = "10.0.0.1";
  e.method = "GET";
  e.path = "/a\"b\\c";
  e.protocol = "HTTP/1.0";
  e.status = 200;
  e.bytes = 1;
  const std::string line = to_clf_line(e);
  EXPECT_NE(line.find("\\\""), std::string::npos);
  const auto back = parse_clf_line(line);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().path, e.path);
}

TEST(ToClfLine, SanitizesWhitespaceInClientSoRoundTripHolds) {
  // A client id containing spaces would shift every later CLF field; the
  // writer must emit a token the parser reads back as one field.
  LogEntry e;
  e.timestamp = 1073865600.0;
  e.client = "bad host\tid";
  e.method = "GET";
  e.path = "/p";
  e.protocol = "HTTP/1.0";
  e.status = 200;
  e.bytes = 7;
  const auto back = parse_clf_line(to_clf_line(e));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().client, "bad_host_id");
  EXPECT_EQ(back.value().method, e.method);
  EXPECT_EQ(back.value().path, e.path);
  EXPECT_EQ(back.value().status, e.status);
  EXPECT_EQ(back.value().bytes, e.bytes);
}

TEST(ToClfLine, RoundTripsThroughParser) {
  LogEntry e;
  e.timestamp = 1073865600.0 + 3661.0;
  e.client = "10.1.2.3";
  e.method = "GET";
  e.path = "/pages/p1.html";
  e.protocol = "HTTP/1.0";
  e.status = 200;
  e.bytes = 4242;
  const std::string line = to_clf_line(e);
  const auto back = parse_clf_line(line);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back.value().timestamp, e.timestamp);
  EXPECT_EQ(back.value().client, e.client);
  EXPECT_EQ(back.value().method, e.method);
  EXPECT_EQ(back.value().path, e.path);
  EXPECT_EQ(back.value().protocol, e.protocol);
  EXPECT_EQ(back.value().status, e.status);
  EXPECT_EQ(back.value().bytes, e.bytes);
}

TEST(ParseClfStream, CountsMalformedAndParsesRest) {
  std::istringstream is(
      "10.0.0.1 - - [12/Jan/2004:08:30:00 +0000] \"GET /a HTTP/1.0\" 200 1\n"
      "garbage line\n"
      "\n"
      "10.0.0.2 - - [12/Jan/2004:08:30:01 +0000] \"GET /b HTTP/1.0\" 404 2\n");
  std::vector<LogEntry> entries;
  const std::size_t bad =
      parse_clf_stream(is, [&](LogEntry&& e) { entries.push_back(std::move(e)); });
  EXPECT_EQ(bad, 1U);  // blank lines are skipped silently, not malformed
  ASSERT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries[0].client, "10.0.0.1");
  EXPECT_EQ(entries[1].status, 404);
}

}  // namespace
}  // namespace fullweb::weblog
