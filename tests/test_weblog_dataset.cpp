#include "weblog/dataset.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/rng.h"

namespace fullweb::weblog {
namespace {

LogEntry entry(double time, const std::string& client, std::uint64_t bytes) {
  LogEntry e;
  e.timestamp = time;
  e.client = client;
  e.method = "GET";
  e.path = "/";
  e.status = 200;
  e.bytes = bytes;
  return e;
}

Dataset small_dataset() {
  std::vector<LogEntry> entries = {
      entry(100, "a", 10), entry(160, "a", 20), entry(100, "b", 5),
      entry(5000, "a", 30),  // a's second session (gap > 1800)
  };
  auto ds = Dataset::from_entries("test", entries);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(Dataset, FromEntriesBasics) {
  const auto ds = small_dataset();
  EXPECT_EQ(ds.name(), "test");
  EXPECT_EQ(ds.requests().size(), 4U);
  EXPECT_EQ(ds.sessions().size(), 3U);
  EXPECT_EQ(ds.distinct_clients(), 2U);
  EXPECT_EQ(ds.total_bytes(), 65U);
  EXPECT_DOUBLE_EQ(ds.t0(), 100.0);
  EXPECT_DOUBLE_EQ(ds.t1(), 5001.0);
}

TEST(Dataset, EmptyEntriesError) {
  EXPECT_FALSE(Dataset::from_entries("x", std::vector<LogEntry>{}).ok());
  EXPECT_FALSE(Dataset::from_requests("x", {}).ok());
}

TEST(Dataset, RequestTimesSorted) {
  const auto ds = small_dataset();
  const auto times = ds.request_times();
  ASSERT_EQ(times.size(), 4U);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

TEST(Dataset, SessionStartTimes) {
  const auto ds = small_dataset();
  const auto starts = ds.session_start_times();
  ASSERT_EQ(starts.size(), 3U);
  EXPECT_DOUBLE_EQ(starts[0], 100.0);
  EXPECT_DOUBLE_EQ(starts[2], 5000.0);
}

TEST(Dataset, RequestsPerSecondSeries) {
  const auto ds = small_dataset();
  const auto series = ds.requests_per_second();
  ASSERT_EQ(series.size(), 4901U);  // [100, 5001)
  EXPECT_DOUBLE_EQ(series[0], 2.0);  // two requests at t=100
  double total = 0;
  for (double c : series) total += c;
  EXPECT_DOUBLE_EQ(total, 4.0);
}

TEST(Dataset, SessionSampleVectors) {
  const auto ds = small_dataset();
  const auto lengths = ds.session_lengths();
  const auto counts = ds.session_request_counts();
  const auto bytes = ds.session_byte_counts();
  ASSERT_EQ(lengths.size(), 3U);
  ASSERT_EQ(counts.size(), 3U);
  ASSERT_EQ(bytes.size(), 3U);
  // Session list is sorted by start: a(100-160), b(100), a(5000).
  EXPECT_DOUBLE_EQ(counts[0] + counts[1] + counts[2], 4.0);
  EXPECT_DOUBLE_EQ(bytes[0] + bytes[1] + bytes[2], 65.0);
}

TEST(Dataset, SessionWindowFiltering) {
  const auto ds = small_dataset();
  const auto early = ds.session_lengths(0.0, 1000.0);
  EXPECT_EQ(early.size(), 2U);
  const auto late = ds.session_lengths(4000.0, 6000.0);
  EXPECT_EQ(late.size(), 1U);
}

TEST(Dataset, PartitionCountsEvents) {
  std::vector<LogEntry> entries;
  // 10 requests in hour 0, 30 in hour 1, 20 in hour 2 (distinct clients so
  // sessions are easy to count).
  for (int i = 0; i < 10; ++i)
    entries.push_back(entry(i * 10.0, "a" + std::to_string(i), 1));
  for (int i = 0; i < 30; ++i)
    entries.push_back(entry(3600 + i * 10.0, "b" + std::to_string(i), 1));
  for (int i = 0; i < 20; ++i)
    entries.push_back(entry(7200 + i * 10.0, "c" + std::to_string(i), 1));
  auto ds = Dataset::from_entries("p", entries);
  ASSERT_TRUE(ds.ok());

  const auto parts = ds.value().partition(3600.0);
  ASSERT_EQ(parts.size(), 3U);
  EXPECT_EQ(parts[0].request_count, 10U);
  EXPECT_EQ(parts[1].request_count, 30U);
  EXPECT_EQ(parts[2].request_count, 20U);
  EXPECT_EQ(parts[0].session_count, 10U);
}

TEST(Dataset, PickLowMedHigh) {
  std::vector<LogEntry> entries;
  for (int i = 0; i < 10; ++i)
    entries.push_back(entry(i * 10.0, "a" + std::to_string(i), 1));
  for (int i = 0; i < 30; ++i)
    entries.push_back(entry(3600 + i * 10.0, "b" + std::to_string(i), 1));
  for (int i = 0; i < 20; ++i)
    entries.push_back(entry(7200 + i * 10.0, "c" + std::to_string(i), 1));
  auto ds = Dataset::from_entries("p", entries);
  ASSERT_TRUE(ds.ok());

  const auto low = ds.value().pick(Load::kLow, 3600.0);
  const auto med = ds.value().pick(Load::kMed, 3600.0);
  const auto high = ds.value().pick(Load::kHigh, 3600.0);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(med.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(low.value().request_count, 10U);
  EXPECT_EQ(med.value().request_count, 20U);
  EXPECT_EQ(high.value().request_count, 30U);
}

TEST(Dataset, PickErrorsWithTooFewIntervals) {
  const auto ds = small_dataset();  // spans ~82 minutes
  EXPECT_FALSE(ds.pick(Load::kLow, 4.0 * 3600.0).ok());
}

TEST(Dataset, WeekPartitionHas42FourHourIntervals) {
  std::vector<LogEntry> entries;
  entries.push_back(entry(0.0, "x", 1));
  entries.push_back(entry(7 * 86400.0 - 1.0, "y", 1));
  auto ds = Dataset::from_entries("w", entries);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().partition(4 * 3600.0).size(), 42U);
}

// Build 8 hours of traffic at t in [0, 8h) with a distinctive count per
// hour so Low/Med/High selections are unambiguous: hour h gets 10*(h+1)
// requests, except hour 0 which gets just 2 (the global minimum).
Dataset hourly_dataset() {
  std::vector<LogEntry> entries;
  int id = 0;
  auto add_hour = [&](int hour, int count) {
    for (int i = 0; i < count; ++i)
      entries.push_back(
          entry(hour * 3600.0 + i * 3.0, "c" + std::to_string(id++), 1));
  };
  add_hour(0, 2);
  for (int h = 1; h < 8; ++h) add_hour(h, 10 * (h + 1));
  auto ds = Dataset::from_entries("hourly", entries);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(Dataset, ExplicitWindowPartitionClipsToNativeGrid) {
  const auto ds = hourly_dataset();
  // Window starts mid-hour-0 and ends mid-hour-6: the leading and trailing
  // intervals are partial, the five in between are full grid hours.
  const auto parts = ds.partition(1800.0, 6.5 * 3600.0, 3600.0);
  ASSERT_EQ(parts.size(), 7U);
  EXPECT_EQ(parts.front().index, 0U);
  EXPECT_DOUBLE_EQ(parts.front().t0, 1800.0);
  EXPECT_DOUBLE_EQ(parts.front().t1, 3600.0);  // clipped leading interval
  EXPECT_DOUBLE_EQ(parts.back().t0, 6 * 3600.0);
  EXPECT_DOUBLE_EQ(parts.back().t1, 6.5 * 3600.0);  // clipped trailing
  for (std::size_t i = 1; i + 1 < parts.size(); ++i) {
    EXPECT_DOUBLE_EQ(parts[i].t1 - parts[i].t0, 3600.0) << "interval " << i;
    EXPECT_EQ(parts[i].index, i);
  }
  // Hour 0 has 2 requests at t = 0, 3: none inside [1800, 3600).
  EXPECT_EQ(parts.front().request_count, 0U);
  // Hour 6's requests run t = 21600..21657, all inside [21600, 23400).
  EXPECT_EQ(parts.back().request_count, 70U);
  EXPECT_EQ(parts[1].request_count, 20U);  // hour 1
}

// Regression for the "drop the first and last interval if partial" comment:
// only the last was ever dropped. With a non-aligned explicit window the
// leading partial interval (here: empty, so it would win Low) must be
// dropped before the Low/Med/High selection.
TEST(Dataset, PickDropsPartialFirstIntervalInExplicitWindow) {
  const auto ds = hourly_dataset();
  // Window [0.5h, 6.5h): partial first (0 requests) and partial last (70
  // requests, the would-be maximum). Eligible full hours 1..5 carry
  // 20/30/40/50/60.
  const auto low = ds.pick(Load::kLow, 1800.0, 6.5 * 3600.0, 3600.0);
  const auto med = ds.pick(Load::kMed, 1800.0, 6.5 * 3600.0, 3600.0);
  const auto high = ds.pick(Load::kHigh, 1800.0, 6.5 * 3600.0, 3600.0);
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(med.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(low.value().request_count, 20U);   // not the empty partial first
  EXPECT_EQ(med.value().request_count, 40U);
  EXPECT_EQ(high.value().request_count, 60U);  // not the partial last
}

// The default whole-window pick is grid-anchored, so its first interval is
// always full; behavior must be unchanged (only a partial *last* dropped).
TEST(Dataset, PickDefaultWindowUnchanged) {
  const auto ds = hourly_dataset();  // window ends mid-hour-7
  const auto low = ds.pick(Load::kLow, 3600.0);
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low.value().request_count, 2U);  // hour 0 is a full interval
  const auto high = ds.pick(Load::kHigh, 3600.0);
  ASSERT_TRUE(high.ok());
  // Hour 7 holds 80 requests but its interval is clipped at t1 (partial) and
  // dropped, exactly as before this fix; hour 6 wins.
  EXPECT_EQ(high.value().request_count, 70U);
}

TEST(LoadNames, Strings) {
  EXPECT_EQ(to_string(Load::kLow), "Low");
  EXPECT_EQ(to_string(Load::kMed), "Med");
  EXPECT_EQ(to_string(Load::kHigh), "High");
}

}  // namespace
}  // namespace fullweb::weblog
