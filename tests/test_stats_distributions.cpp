#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.h"
#include "support/rng.h"

namespace fullweb::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.9750021, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.96), 0.0249979, 1e-6);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501, 1e-6);
}

TEST(NormalQuantile, InvertsCdf) {
  for (double p : {0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-8) << "p=" << p;
  }
}

TEST(NormalQuantile, RejectsBoundaries) {
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

// ---------------------------------------------------------------- Pareto

TEST(Pareto, CdfMatchesPaperEquation4) {
  const Pareto p(1.5, 2.0);
  EXPECT_DOUBLE_EQ(p.cdf(1.0), 0.0);  // below k
  EXPECT_DOUBLE_EQ(p.cdf(2.0), 0.0);
  EXPECT_NEAR(p.cdf(4.0), 1.0 - std::pow(0.5, 1.5), 1e-12);
  EXPECT_NEAR(p.ccdf(4.0), std::pow(0.5, 1.5), 1e-12);
}

TEST(Pareto, QuantileInvertsCdf) {
  const Pareto p(1.2, 5.0);
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.99}) {
    EXPECT_NEAR(p.cdf(p.quantile(q)), q, 1e-10);
  }
}

TEST(Pareto, MomentFiniteness) {
  EXPECT_TRUE(std::isinf(Pareto(0.9, 1.0).mean()));
  EXPECT_TRUE(std::isinf(Pareto(1.5, 1.0).variance()));
  EXPECT_FALSE(std::isinf(Pareto(1.5, 1.0).mean()));
  EXPECT_FALSE(std::isinf(Pareto(2.5, 1.0).variance()));
}

TEST(Pareto, MeanFormula) {
  const Pareto p(3.0, 2.0);
  EXPECT_DOUBLE_EQ(p.mean(), 3.0);  // alpha k / (alpha - 1)
  EXPECT_NEAR(p.variance(), 4.0 * 3.0 / (4.0 * 1.0), 1e-12);
}

TEST(Pareto, SampleMeanConverges) {
  support::Rng rng(1);
  const Pareto p(3.0, 2.0);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += p.sample(rng);
  EXPECT_NEAR(sum / n, p.mean(), 0.02);
}

TEST(Pareto, SamplesRespectLocation) {
  support::Rng rng(2);
  const Pareto p(1.1, 7.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(p.sample(rng), 7.0);
}

TEST(Pareto, MleRecoversAlpha) {
  support::Rng rng(3);
  const Pareto truth(1.7, 1.0);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = truth.sample(rng);
  const auto fit = Pareto::fit_mle(xs, 1.0);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().alpha(), 1.7, 0.05);
}

TEST(Pareto, MleErrorsOnBadInput) {
  EXPECT_FALSE(Pareto::fit_mle(std::vector<double>{1.0}, 1.0).ok());
  EXPECT_FALSE(Pareto::fit_mle(std::vector<double>{1, 2, 3}, -1.0).ok());
  // All samples below k.
  EXPECT_FALSE(Pareto::fit_mle(std::vector<double>{1, 2, 3}, 10.0).ok());
}

TEST(Pareto, RejectsBadParameters) {
  EXPECT_THROW(Pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Pareto(1.0, -2.0), std::invalid_argument);
}

// ------------------------------------------------------------- Lognormal

TEST(Lognormal, CdfMedian) {
  const Lognormal ln(2.0, 0.5);
  EXPECT_NEAR(ln.cdf(std::exp(2.0)), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(ln.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ln.cdf(-5.0), 0.0);
}

TEST(Lognormal, MeanVarianceFormulas) {
  const Lognormal ln(1.0, 0.8);
  EXPECT_NEAR(ln.mean(), std::exp(1.0 + 0.32), 1e-12);
  const double s2 = 0.64;
  EXPECT_NEAR(ln.variance(), (std::exp(s2) - 1.0) * std::exp(2.0 + s2), 1e-9);
}

TEST(Lognormal, SampleMomentsConverge) {
  support::Rng rng(4);
  const Lognormal ln(0.5, 0.7);
  std::vector<double> xs(200000);
  for (auto& x : xs) x = ln.sample(rng);
  EXPECT_NEAR(mean(xs), ln.mean(), 0.02 * ln.mean());
}

TEST(Lognormal, MleRecoversParameters) {
  support::Rng rng(5);
  const Lognormal truth(3.0, 1.2);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = truth.sample(rng);
  const auto fit = Lognormal::fit_mle(xs);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().mu(), 3.0, 0.02);
  EXPECT_NEAR(fit.value().sigma(), 1.2, 0.02);
}

TEST(Lognormal, MleRejectsNonPositive) {
  EXPECT_FALSE(Lognormal::fit_mle(std::vector<double>{1.0, -2.0, 3.0}).ok());
  EXPECT_FALSE(Lognormal::fit_mle(std::vector<double>{1.0}).ok());
}

TEST(Lognormal, QuantileInvertsCdf) {
  const Lognormal ln(1.5, 0.9);
  for (double q : {0.05, 0.25, 0.5, 0.75, 0.95})
    EXPECT_NEAR(ln.cdf(ln.quantile(q)), q, 1e-9);
}

// ----------------------------------------------------------- Exponential

TEST(Exponential, CdfAndQuantile) {
  const Exponential e(2.0);
  EXPECT_NEAR(e.cdf(0.5), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(e.quantile(1.0 - std::exp(-1.0)), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(e.cdf(-1.0), 0.0);
}

TEST(Exponential, MemorylessCcdf) {
  const Exponential e(0.7);
  // P(X > s + t) = P(X > s) P(X > t).
  EXPECT_NEAR(e.ccdf(3.0), e.ccdf(1.0) * e.ccdf(2.0), 1e-12);
}

TEST(Exponential, SampleMeanConverges) {
  support::Rng rng(6);
  const Exponential e(4.0);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += e.sample(rng);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(Exponential, MleIsInverseMean) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const auto fit = Exponential::fit_mle(xs);
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit.value().lambda(), 0.5);
}

// --------------------------------------------------------------- Weibull

TEST(Weibull, ReducesToExponentialAtShapeOne) {
  const Weibull w(1.0, 2.0);
  const Exponential e(0.5);
  for (double x : {0.1, 1.0, 3.0, 10.0})
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
}

TEST(Weibull, QuantileInvertsCdf) {
  const Weibull w(0.7, 3.0);
  for (double q : {0.1, 0.5, 0.9}) EXPECT_NEAR(w.cdf(w.quantile(q)), q, 1e-10);
}

TEST(Weibull, SamplesNonNegative) {
  support::Rng rng(8);
  const Weibull w(0.5, 1.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(w.sample(rng), 0.0);
}

// --------------------------------------------------------------- Poisson

class PoissonMoments : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMoments, MeanAndVarianceMatch) {
  const double lambda = GetParam();
  support::Rng rng(100 + static_cast<std::uint64_t>(lambda * 10));
  const int n = 100000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const auto k = static_cast<double>(poisson_sample(lambda, rng));
    sum += k;
    sum2 += k * k;
  }
  const double m = sum / n;
  const double var = sum2 / n - m * m;
  const double tol = 5.0 * std::sqrt(lambda / n) + 0.01;
  EXPECT_NEAR(m, lambda, tol);
  EXPECT_NEAR(var, lambda, 10.0 * tol * std::sqrt(lambda + 1.0));
}

// Spans Knuth (< 10) and PTRS (>= 10) regimes.
INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonMoments,
                         ::testing::Values(0.1, 1.0, 5.0, 9.9, 10.1, 30.0,
                                           100.0));

TEST(Poisson, ZeroAndNegativeMeanGiveZero) {
  support::Rng rng(1);
  EXPECT_EQ(poisson_sample(0.0, rng), 0);
  EXPECT_EQ(poisson_sample(-3.0, rng), 0);
}

}  // namespace
}  // namespace fullweb::stats
