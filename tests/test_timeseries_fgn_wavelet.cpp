// Tests for fractional Gaussian noise synthesis and the wavelet transform.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/acf.h"
#include "stats/descriptive.h"
#include "support/rng.h"
#include "timeseries/fgn.h"
#include "timeseries/wavelet.h"

namespace fullweb::timeseries {
namespace {

TEST(FgnAutocovariance, WhiteNoiseAtHalf) {
  EXPECT_DOUBLE_EQ(fgn_autocovariance(0.5, 0), 1.0);
  for (std::size_t k = 1; k <= 5; ++k)
    EXPECT_NEAR(fgn_autocovariance(0.5, k), 0.0, 1e-12);
}

TEST(FgnAutocovariance, PositiveForPersistentH) {
  for (std::size_t k = 1; k <= 10; ++k)
    EXPECT_GT(fgn_autocovariance(0.8, k), 0.0);
}

TEST(FgnAutocovariance, NegativeForAntipersistentH) {
  EXPECT_LT(fgn_autocovariance(0.3, 1), 0.0);
}

TEST(FgnAutocovariance, HyperbolicDecayRate) {
  // gamma(k) ~ H(2H-1) k^{2H-2}: check the ratio at large lags.
  const double h = 0.8;
  const double g100 = fgn_autocovariance(h, 100);
  const double g200 = fgn_autocovariance(h, 200);
  EXPECT_NEAR(g200 / g100, std::pow(2.0, 2.0 * h - 2.0), 0.01);
}

TEST(GenerateFgn, RejectsBadParameters) {
  support::Rng rng(1);
  EXPECT_FALSE(generate_fgn(100, 0.0, 1.0, rng).ok());
  EXPECT_FALSE(generate_fgn(100, 1.0, 1.0, rng).ok());
  EXPECT_FALSE(generate_fgn(100, 0.7, -1.0, rng).ok());
}

TEST(GenerateFgn, EdgeLengths) {
  support::Rng rng(2);
  EXPECT_TRUE(generate_fgn(0, 0.7, 1.0, rng).ok());
  const auto one = generate_fgn(1, 0.7, 1.0, rng);
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value().size(), 1U);
}

TEST(GenerateFgn, MarginalMomentsMatch) {
  support::Rng rng(3);
  const auto xs = generate_fgn(1 << 16, 0.75, 2.0, rng);
  ASSERT_TRUE(xs.ok());
  EXPECT_NEAR(stats::mean(xs.value()), 0.0, 0.35);  // LRD mean converges slowly
  EXPECT_NEAR(stats::stddev(xs.value()), 2.0, 0.15);
}

class FgnAcfMatchesTheory : public ::testing::TestWithParam<double> {};

TEST_P(FgnAcfMatchesTheory, EmpiricalAcfTracksTheoretical) {
  const double h = GetParam();
  support::Rng rng(40 + static_cast<std::uint64_t>(h * 100));
  const auto xs = generate_fgn(1 << 17, h, 1.0, rng);
  ASSERT_TRUE(xs.ok());
  const auto r = stats::acf(xs.value(), 10);
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(r[k], fgn_autocovariance(h, k), 0.05)
        << "H=" << h << " lag=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(HurstValues, FgnAcfMatchesTheory,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8));

TEST(GenerateFgn, StrongLrdAcfWithinBiasBand) {
  // At H = 0.9 the biased ACF estimator systematically undershoots the
  // theoretical curve by O(n^{2H-2}) ~= 0.1 at n = 2^17 (mean estimation
  // absorbs low-frequency energy) — allow that bias band.
  support::Rng rng(130);
  const auto xs = generate_fgn(1 << 17, 0.9, 1.0, rng);
  ASSERT_TRUE(xs.ok());
  const auto r = stats::acf(xs.value(), 10);
  for (std::size_t k = 1; k <= 10; ++k) {
    const double theory = fgn_autocovariance(0.9, k);
    EXPECT_LT(r[k], theory + 0.05) << "lag " << k;
    EXPECT_GT(r[k], theory - 0.15) << "lag " << k;
  }
}

TEST(GenerateFgn, WhiteNoiseCaseUncorrelated) {
  support::Rng rng(5);
  const auto xs = generate_fgn(1 << 15, 0.5, 1.0, rng);
  ASSERT_TRUE(xs.ok());
  const auto r = stats::acf(xs.value(), 5);
  for (std::size_t k = 1; k <= 5; ++k) EXPECT_NEAR(r[k], 0.0, 0.02);
}

// ----------------------------------------------------------------- wavelet

TEST(Dwt, HaarEnergyConservation) {
  support::Rng rng(6);
  std::vector<double> xs(256);
  for (auto& x : xs) x = rng.normal();
  double input_energy = 0;
  for (double x : xs) input_energy += x * x;

  const auto d = dwt(xs, WaveletKind::kHaar, 2);
  double output_energy = 0;
  for (const auto& level : d.details)
    for (double c : level) output_energy += c * c;
  for (double c : d.final_approximation) output_energy += c * c;
  EXPECT_NEAR(output_energy, input_energy, 1e-9 * input_energy);
}

TEST(Dwt, D4EnergyConservation) {
  support::Rng rng(7);
  std::vector<double> xs(512);
  for (auto& x : xs) x = rng.normal();
  double input_energy = 0;
  for (double x : xs) input_energy += x * x;

  const auto d = dwt(xs, WaveletKind::kD4, 2);
  double output_energy = 0;
  for (const auto& level : d.details)
    for (double c : level) output_energy += c * c;
  for (double c : d.final_approximation) output_energy += c * c;
  EXPECT_NEAR(output_energy, input_energy, 1e-9 * input_energy);
}

TEST(Dwt, OctaveSizesHalve) {
  std::vector<double> xs(1024, 0.0);
  const auto d = dwt(xs, WaveletKind::kD4, 4);
  ASSERT_GE(d.octaves(), 5U);
  std::size_t expect = 512;
  for (const auto& level : d.details) {
    EXPECT_EQ(level.size(), expect);
    expect /= 2;
  }
}

TEST(Dwt, ConstantSignalHasZeroDetails) {
  const std::vector<double> xs(256, 3.0);
  const auto d = dwt(xs, WaveletKind::kD4, 2);
  for (const auto& level : d.details)
    for (double c : level) EXPECT_NEAR(c, 0.0, 1e-10);
}

TEST(Dwt, D4AnnihilatesLinearTrend) {
  // D4 has two vanishing moments: details of a pure linear ramp vanish
  // (up to the periodic wrap-around at the boundary).
  std::vector<double> xs(512);
  for (std::size_t t = 0; t < xs.size(); ++t)
    xs[t] = 0.5 * static_cast<double>(t);
  const auto d = dwt(xs, WaveletKind::kD4, 8);
  ASSERT_GE(d.octaves(), 1U);
  const auto& finest = d.details[0];
  // Ignore the last coefficient (periodic boundary sees the jump).
  for (std::size_t k = 0; k + 1 < finest.size(); ++k)
    EXPECT_NEAR(finest[k], 0.0, 1e-9) << "k=" << k;
  // Haar (one vanishing moment) does NOT annihilate the ramp.
  const auto h = dwt(xs, WaveletKind::kHaar, 8);
  double haar_energy = 0;
  for (std::size_t k = 0; k + 1 < h.details[0].size(); ++k)
    haar_energy += h.details[0][k] * h.details[0][k];
  EXPECT_GT(haar_energy, 1.0);
}

TEST(Dwt, OddLengthInputTruncated) {
  std::vector<double> xs(101, 1.0);
  const auto d = dwt(xs, WaveletKind::kHaar, 2);
  ASSERT_GE(d.octaves(), 1U);
  EXPECT_EQ(d.details[0].size(), 50U);
}

TEST(Dwt, TooShortInputYieldsNoOctaves) {
  const std::vector<double> xs = {1.0, 2.0};
  const auto d = dwt(xs, WaveletKind::kD4, 4);
  EXPECT_EQ(d.octaves(), 0U);
}

}  // namespace
}  // namespace fullweb::timeseries
