#include "tail/curvature.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/distributions.h"
#include "support/rng.h"

namespace fullweb::tail {
namespace {

std::vector<double> sample_from(const auto& dist, std::size_t n,
                                std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

TEST(LlcdCurvature, ParetoNearZeroLognormalNegative) {
  // A Pareto LLCD is straight (curvature ~ 0); a wide lognormal LLCD bends
  // downward (negative quadratic coefficient).
  const auto pareto = sample_from(stats::Pareto(1.5, 1.0), 20000, 1);
  const auto lognormal = sample_from(stats::Lognormal(0.0, 1.0), 20000, 2);
  const auto cp = llcd_curvature(pareto, 0.5);
  const auto cl = llcd_curvature(lognormal, 0.5);
  ASSERT_TRUE(cp.ok());
  ASSERT_TRUE(cl.ok());
  EXPECT_NEAR(cp.value(), 0.0, 0.3);
  EXPECT_LT(cl.value(), -0.5);
  EXPECT_LT(cl.value(), cp.value());
}

TEST(LlcdCurvature, ErrorsOnTinySample) {
  EXPECT_FALSE(llcd_curvature(std::vector<double>{1, 2, 3}, 0.5).ok());
}

TEST(CurvatureTest, ParetoSampleNotRejectedUnderParetoNull) {
  const auto xs = sample_from(stats::Pareto(1.6, 1.0), 5000, 3);
  support::Rng rng(4);
  CurvatureOptions opts;
  opts.model = TailModel::kPareto;
  opts.replicates = 99;
  const auto r = curvature_test(xs, rng, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().p_value, 0.05);
  EXPECT_FALSE(r.value().rejected_at_5pct);
  EXPECT_NEAR(r.value().param1, 1.6, 0.3);  // fitted alpha
}

TEST(CurvatureTest, LognormalSampleNotRejectedUnderLognormalNull) {
  const auto xs = sample_from(stats::Lognormal(1.0, 1.2), 5000, 5);
  support::Rng rng(6);
  CurvatureOptions opts;
  opts.model = TailModel::kLognormal;
  opts.replicates = 99;
  const auto r = curvature_test(xs, rng, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().p_value, 0.05);
  EXPECT_NEAR(r.value().param1, 1.0, 0.1);  // mu
  EXPECT_NEAR(r.value().param2, 1.2, 0.1);  // sigma
}

TEST(CurvatureTest, LognormalRejectedUnderParetoNullEventually) {
  // A strongly bending lognormal should be flagged as non-Pareto: its
  // curvature falls outside the Pareto reference distribution.
  const auto xs = sample_from(stats::Lognormal(0.0, 0.6), 8000, 7);
  support::Rng rng(8);
  CurvatureOptions opts;
  opts.model = TailModel::kPareto;
  opts.replicates = 99;
  const auto r = curvature_test(xs, rng, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().rejected_at_5pct);
}

TEST(CurvatureTest, AlphaOverrideChangesP) {
  // The paper's observation: the Pareto p-value is sensitive to the
  // plugged-in alpha. An absurd alpha should produce a tiny p-value.
  const auto xs = sample_from(stats::Pareto(1.5, 1.0), 5000, 9);
  support::Rng rng_a(10);
  support::Rng rng_b(10);  // same stream: isolate the alpha effect
  CurvatureOptions fitted;
  fitted.replicates = 99;
  CurvatureOptions forced;
  forced.replicates = 99;
  forced.alpha_override = 6.0;
  const auto pa = curvature_test(xs, rng_a, fitted);
  const auto pb = curvature_test(xs, rng_b, forced);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_DOUBLE_EQ(pb.value().param1, 6.0);
  EXPECT_NE(pa.value().p_value, pb.value().p_value);
}

TEST(CurvatureTest, SeedSensitivityExists) {
  // Second paper observation: same data, same alpha, different Monte-Carlo
  // sample -> (slightly) different p-value.
  const auto xs = sample_from(stats::Pareto(1.3, 1.0), 3000, 11);
  support::Rng rng_a(12);
  support::Rng rng_b(13);
  CurvatureOptions opts;
  opts.replicates = 49;
  const auto pa = curvature_test(xs, rng_a, opts);
  const auto pb = curvature_test(xs, rng_b, opts);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  // They may coincide by chance, but the machinery must at least run both;
  // verify both are valid probabilities.
  EXPECT_GT(pa.value().p_value, 0.0);
  EXPECT_LE(pa.value().p_value, 1.0);
  EXPECT_GT(pb.value().p_value, 0.0);
  EXPECT_LE(pb.value().p_value, 1.0);
}

TEST(CurvatureTest, ErrorsOnSmallSample) {
  const auto xs = sample_from(stats::Pareto(1.5, 1.0), 30, 14);
  support::Rng rng(15);
  EXPECT_FALSE(curvature_test(xs, rng, {}).ok());
}

TEST(CurvatureTest, RejectsBadAlphaOverride) {
  const auto xs = sample_from(stats::Pareto(1.5, 1.0), 1000, 16);
  support::Rng rng(17);
  CurvatureOptions opts;
  opts.alpha_override = -1.0;
  EXPECT_FALSE(curvature_test(xs, rng, opts).ok());
}

TEST(CurvatureTest, ReportsReplicateCount) {
  const auto xs = sample_from(stats::Pareto(2.0, 1.0), 2000, 18);
  support::Rng rng(19);
  CurvatureOptions opts;
  opts.replicates = 49;
  const auto r = curvature_test(xs, rng, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().replicates, 49U);
}

}  // namespace
}  // namespace fullweb::tail
