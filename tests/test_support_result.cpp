#include "support/result.h"

#include <gtest/gtest.h>

namespace fullweb::support {
namespace {

Result<int> parse_positive(int v) {
  if (v <= 0) return Error::invalid_argument("not positive");
  return v;
}

TEST(Result, HoldsValue) {
  const Result<int> r = parse_positive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 5);
}

TEST(Result, HoldsError) {
  const Result<int> r = parse_positive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category, "invalid_argument");
  EXPECT_EQ(r.error().message, "not positive");
}

TEST(Result, ValueOnErrorThrowsLogicError) {
  const Result<int> r = parse_positive(0);
  EXPECT_THROW((void)r.value(), std::logic_error);
}

TEST(Result, ValueOrFallsBack) {
  EXPECT_EQ(parse_positive(3).value_or(-1), 3);
  EXPECT_EQ(parse_positive(0).value_or(-1), -1);
}

TEST(Result, MapTransformsValue) {
  const auto doubled = parse_positive(4).map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 8);
}

TEST(Result, MapPropagatesError) {
  const auto doubled = parse_positive(-3).map([](int v) { return v * 2; });
  ASSERT_FALSE(doubled.ok());
  EXPECT_EQ(doubled.error().message, "not positive");
}

TEST(Result, MoveExtraction) {
  Result<std::string> r = std::string("hello");
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(ErrorFactories, CategoriesAreDistinct) {
  EXPECT_EQ(Error::insufficient_data("x").category, "insufficient_data");
  EXPECT_EQ(Error::parse("x").category, "parse");
  EXPECT_EQ(Error::numeric("x").category, "numeric");
  EXPECT_EQ(Error::invalid_argument("x").category, "invalid_argument");
}

TEST(Status, DefaultIsSuccess) {
  const Status s;
  EXPECT_TRUE(s.ok());
}

TEST(Status, CarriesError) {
  const Status s = Error::numeric("overflow");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().message, "overflow");
}

}  // namespace
}  // namespace fullweb::support
