#include <gtest/gtest.h>

#include <sstream>

#include "support/cli.h"
#include "support/table.h"

namespace fullweb::support {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "count"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name    count"), std::string::npos);
  EXPECT_NE(s.find("longer  22"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, SeparatorRendersRule) {
  Table t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // Three rules total: under the header and the explicit separator.
  std::size_t rules = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line))
    if (line.find_first_not_of('-') == std::string::npos && !line.empty()) ++rules;
  EXPECT_EQ(rules, 2U);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvSkipsSeparators) {
  Table t({"a"});
  t.add_row({"1"});
  t.add_separator();
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a\n1\n");
}

TEST(Cli, ParsesSpaceAndEqualsForms) {
  CliFlags flags;
  flags.define("alpha", "1.0", "tail index");
  flags.define("name", "x", "label");
  const char* argv[] = {"prog", "--alpha", "2.5", "--name=web"};
  ASSERT_TRUE(flags.parse(4, argv));
  EXPECT_DOUBLE_EQ(flags.get_double("alpha"), 2.5);
  EXPECT_EQ(flags.get("name"), "web");
}

TEST(Cli, DefaultsApplyWhenAbsent) {
  CliFlags flags;
  flags.define("n", "42", "count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, argv));
  EXPECT_EQ(flags.get_int("n"), 42);
}

TEST(Cli, BooleanFlagBareForm) {
  CliFlags flags;
  flags.define("verbose", "false", "chatty output");
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(flags.parse(2, argv));
  EXPECT_TRUE(flags.get_bool("verbose"));
}

TEST(Cli, UnknownFlagFailsParse) {
  CliFlags flags;
  flags.define("x", "1", "");
  const char* argv[] = {"prog", "--nope", "3"};
  EXPECT_FALSE(flags.parse(3, argv));
}

TEST(Cli, PositionalArgumentsCollected) {
  CliFlags flags;
  flags.define("x", "1", "");
  const char* argv[] = {"prog", "file1.log", "--x", "2", "file2.log"};
  ASSERT_TRUE(flags.parse(5, argv));
  ASSERT_EQ(flags.positional().size(), 2U);
  EXPECT_EQ(flags.positional()[0], "file1.log");
  EXPECT_EQ(flags.positional()[1], "file2.log");
}

TEST(Cli, UndeclaredGetThrows) {
  CliFlags flags;
  EXPECT_THROW((void)flags.get("missing"), std::invalid_argument);
}

}  // namespace
}  // namespace fullweb::support
