#include "support/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace fullweb::support {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformPosNeverZero) {
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) EXPECT_GT(rng.uniform_pos(), 0.0);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 2.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, BelowIsUnbiased) {
  Rng rng(13);
  const std::uint64_t n = 10;
  std::vector<int> counts(n, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.below(n)];
  for (std::uint64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(counts[k], draws / static_cast<double>(n),
                5.0 * std::sqrt(draws / static_cast<double>(n)));
  }
}

TEST(Rng, BelowZeroAndOne) {
  Rng rng(17);
  EXPECT_EQ(rng.below(0), 0U);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0U);
}

TEST(Rng, NormalMomentsMatchStandardNormal) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0, sum2 = 0, sum3 = 0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sum2 += z * z;
    sum3 += z * z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
  EXPECT_NEAR(sum3 / n, 0.0, 0.05);  // symmetry
}

TEST(Rng, JumpChangesStateDeterministically) {
  Rng a(23);
  Rng b(23);
  a.jump();
  b.jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Rng unjumped(23);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == unjumped()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SubstreamsAreIndependentAndOrderFree) {
  Rng base(23);
  Rng a = base.substream(1);
  Rng b = base.substream(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
  // substream(k) is a pure function of the base state.
  Rng a_again = base.substream(1);
  Rng a_ref(23);
  a_ref.jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a_again(), a_ref());
}

TEST(Rng, SubstreamZeroEqualsSelf) {
  Rng base(29);
  Rng s0 = base.substream(0);
  Rng copy(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s0(), copy());
}

TEST(Rng, LongJumpDiffersFromJump) {
  Rng a(31), b(31);
  a.jump();
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngSplitter, MatchesSubstreamAtAnyAccessOrder) {
  Rng base(37);
  const Rng snapshot = base;  // splitter consumes the parent via long_jump
  RngSplitter splitter(base);
  // Out-of-order and repeated access must match substream(k) exactly.
  for (std::uint64_t k : {5ULL, 1ULL, 3ULL, 1ULL, 0ULL, 7ULL}) {
    Rng from_splitter = splitter.stream(k);
    Rng reference = snapshot.substream(k);
    for (int i = 0; i < 20; ++i) EXPECT_EQ(from_splitter(), reference());
  }
}

TEST(RngSplitter, ParentIsJumpedPastDerivedStreams) {
  Rng parent(41);
  const Rng snapshot = parent;
  RngSplitter splitter(parent);
  // The parent must now be 2^224 states ahead: past the region any splitter
  // level can occupy, disjoint from every derived stream.
  Rng expected = snapshot;
  expected.jump_pow2(224);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(parent(), expected());
}

TEST(Rng, JumpPow2MatchesNamedJumps) {
  Rng a(43), b(43);
  a.jump_pow2(128);
  b.jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Rng c(43), d(43);
  c.jump_pow2(192);
  d.long_jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c(), d());
}

TEST(Rng, JumpPow2ExponentsAreDistinctStreams) {
  // Each supported exponent lands in a different part of the sequence.
  std::set<std::uint64_t> firsts;
  for (int e : {128, 160, 192, 224}) {
    Rng r(47);
    r.jump_pow2(e);
    firsts.insert(r());
  }
  EXPECT_EQ(firsts.size(), 4U);
}

TEST(Rng, JumpPow2AppliedTwiceDiffersFromOnce) {
  // The full doubling identity (twice 2^e == once 2^(e+1)) is verified by
  // tools/gen_jump_polys.cpp; here just check repeated jumps keep moving.
  Rng once(53), twice(53);
  once.jump_pow2(160);
  twice.jump_pow2(160);
  twice.jump_pow2(160);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (once() == twice()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngSplitter, NestedSplitDoesNotAliasSiblingStreams) {
  // The REVIEW.md regression: with flat 2^128 spacing at every level,
  // re-splitting parent.stream(k) reproduced parent.stream(k + j) bit for
  // bit. With levels, a nested stream must differ from every sibling.
  Rng base(101);
  RngSplitter top = RngSplitter::over(base, 1);
  Rng first = top.stream(0);
  RngSplitter nested = RngSplitter::over(first, 0);
  for (std::uint64_t j = 1; j <= 4; ++j) {
    Rng from_nested = nested.stream(j);
    Rng sibling = top.stream(j);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
      if (from_nested() == sibling()) ++equal;
    EXPECT_LT(equal, 3) << "nested stream " << j << " aliases sibling";
  }
}

TEST(RngSplitter, ThreeLevelHierarchyYieldsDistinctLeaves) {
  // Mirror the fit_fullweb_model hierarchy: level-2 branches, level-1
  // per-branch splits, level-0 leaves. Every leaf stream must open with a
  // distinct value (64-bit outputs: chance collision is negligible).
  Rng base(4321);
  RngSplitter top = RngSplitter::over(base, 2);
  std::set<std::uint64_t> firsts;
  std::size_t leaves = 0;
  for (std::uint64_t b = 0; b < 4; ++b) {
    Rng branch = top.stream(b);
    RngSplitter mid(branch, 1);
    for (std::uint64_t m = 0; m < 4; ++m) {
      Rng metric = mid.stream(m);
      RngSplitter leaf_split(metric, 0);
      for (std::uint64_t l = 0; l < 3; ++l) {
        Rng leaf = leaf_split.stream(l);
        firsts.insert(leaf());
        ++leaves;
      }
    }
  }
  EXPECT_EQ(firsts.size(), leaves);
}

TEST(RngSplitter, StreamZeroDropsParentsCachedNormalSpare) {
  Rng parent(55);
  (void)parent.normal();  // leaves a cached Marsaglia spare in the state
  const Rng snapshot = parent;
  Rng expected = snapshot.substream(0);  // documented equivalence at level 0
  RngSplitter splitter = RngSplitter::over(snapshot);
  Rng got = splitter.stream(0);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(got.normal(), expected.normal());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace fullweb::support
