#include "core/stationary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "support/rng.h"

namespace fullweb::core {
namespace {

std::vector<double> noise(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal();
  return xs;
}

/// Noise + trend + daily sinusoid with a short "day" so tests stay fast.
std::vector<double> workload_like(std::size_t n, std::size_t day, double trend,
                                  double amplitude, std::uint64_t seed) {
  auto xs = noise(n, seed);
  for (std::size_t t = 0; t < n; ++t) {
    xs[t] += trend * static_cast<double>(t) +
             amplitude * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                                  static_cast<double>(day));
  }
  return xs;
}

StationaryOptions short_day_options() {
  StationaryOptions opts;
  opts.min_period = 50;
  opts.max_period = 500;
  return opts;
}

TEST(MakeStationary, AlreadyStationaryPassesThrough) {
  const auto xs = noise(4000, 1);
  const auto r = make_stationary(xs);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().was_stationary);
  EXPECT_FALSE(r.value().trend_removed);
  EXPECT_EQ(r.value().series.size(), xs.size());
  EXPECT_EQ(r.value().series, xs);
}

TEST(MakeStationary, TrendAndSeasonRemovedAndKpssPasses) {
  const auto xs = workload_like(8000, 200, 0.002, 4.0, 2);
  const auto r = make_stationary(xs, short_day_options());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().was_stationary);
  EXPECT_TRUE(r.value().trend_removed);
  EXPECT_TRUE(r.value().seasonal_removed);
  EXPECT_NEAR(static_cast<double>(r.value().period), 200.0, 10.0);
  ASSERT_TRUE(r.value().kpss_stationary.has_value());
  EXPECT_TRUE(r.value().kpss_stationary->stationary_at_5pct());
  // Differencing shortens the series by one period.
  EXPECT_EQ(r.value().series.size(), xs.size() - r.value().period);
}

TEST(MakeStationary, TrendSlopeEstimated) {
  const auto xs = workload_like(8000, 200, 0.003, 2.0, 3);
  const auto r = make_stationary(xs, short_day_options());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().trend_slope, 0.003, 5e-4);
}

TEST(MakeStationary, SeasonalMeansAlternativePreservesLength) {
  auto opts = short_day_options();
  opts.seasonal_method = SeasonalMethod::kMeans;
  const auto xs = workload_like(8000, 200, 0.002, 4.0, 4);
  const auto r = make_stationary(xs, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().seasonal_removed);
  EXPECT_EQ(r.value().series.size(), xs.size());
}

TEST(MakeStationary, UnconditionalModeProcessesStationaryInput) {
  auto opts = short_day_options();
  opts.only_if_nonstationary = false;
  const auto xs = noise(4000, 5);
  const auto r = make_stationary(xs, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().was_stationary);
  EXPECT_TRUE(r.value().trend_removed);  // processed anyway
}

TEST(MakeStationary, ShortSeriesSkipsSeasonalDetection) {
  // Series shorter than 2 * max_period: trend removal only.
  auto opts = short_day_options();
  opts.max_period = 5000;
  const auto xs = workload_like(6000, 200, 0.01, 0.0, 6);
  const auto r = make_stationary(xs, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().trend_removed);
  EXPECT_FALSE(r.value().seasonal_removed);
  EXPECT_EQ(r.value().period, 0U);
}

TEST(MakeStationary, ErrorsOnDegenerateInput) {
  EXPECT_FALSE(make_stationary(std::vector<double>(5, 1.0)).ok());
  EXPECT_FALSE(make_stationary(std::vector<double>(100, 3.0)).ok());
}

TEST(MakeStationary, SeasonalStrengthReported) {
  const auto strong = workload_like(8000, 200, 0.0, 8.0, 7);
  auto opts = short_day_options();
  opts.only_if_nonstationary = false;
  const auto r = make_stationary(strong, opts);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().seasonal_strength, 0.3);
}

}  // namespace
}  // namespace fullweb::core
