// Degenerate-input behavior across the analysis kernels: empty, single
// point, constant, and all-nonpositive samples must produce a diagnosable
// error (support::Result) or an explicitly absent estimate — never NaN
// estimates or UB. These are the inputs real sparse logs produce (the
// paper's NASA-Pub2 "NA" cells).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lrd/estimator_suite.h"
#include "stats/kpss.h"
#include "tail/hill.h"
#include "tail/llcd.h"

namespace {

using namespace fullweb;

const std::vector<double> kEmpty;
const std::vector<double> kOne{42.0};

TEST(EdgeInputs, HurstSuiteOnEmptyAndSingletonReportsNoEstimates) {
  for (const auto& xs : {kEmpty, kOne}) {
    const auto suite = lrd::hurst_suite(xs);
    EXPECT_TRUE(suite.estimates.empty()) << "n=" << xs.size();
    EXPECT_FALSE(suite.all_indicate_lrd());
  }
}

TEST(EdgeInputs, HurstSuiteOnConstantSeriesHasNoNanEstimates) {
  const std::vector<double> constant(4096, 3.0);
  const auto suite = lrd::hurst_suite(constant);
  // A zero-variance series has no defined H; estimators may either drop out
  // or return a finite value, but never NaN/inf.
  for (const auto& est : suite.estimates) {
    EXPECT_TRUE(std::isfinite(est.h)) << lrd::to_string(est.method);
    if (est.ci95_halfwidth)
      EXPECT_TRUE(std::isfinite(*est.ci95_halfwidth)) << lrd::to_string(est.method);
  }
}

TEST(EdgeInputs, HillPlotErrorsOnTooFewSamples) {
  EXPECT_FALSE(tail::hill_plot(kEmpty).ok());
  EXPECT_FALSE(tail::hill_plot(kOne).ok());
  EXPECT_FALSE(tail::hill_estimate(kEmpty).ok());
  EXPECT_FALSE(tail::hill_estimate(kOne).ok());
}

TEST(EdgeInputs, HillPlotErrorsWithoutPositiveSamples) {
  const std::vector<double> nonpositive(500, -1.0);
  EXPECT_FALSE(tail::hill_plot(nonpositive).ok());
  const std::vector<double> zeros(500, 0.0);
  EXPECT_FALSE(tail::hill_plot(zeros).ok());
}

TEST(EdgeInputs, HillEstimateOnConstantSampleIsADiagnosableError) {
  // log X_(i) - log X_(k+1) == 0 for a constant sample, so alpha is
  // undefined at every k. The plot flags those points NaN by documented
  // contract (see test_tail_hill TiesAtTopYieldNaNNotCrash) — never inf —
  // and the estimate, the user-visible result, must refuse cleanly.
  const std::vector<double> constant(500, 7.0);
  const auto plot = tail::hill_plot(constant);
  if (plot.ok()) {
    for (double a : plot.value().alpha) EXPECT_FALSE(std::isinf(a));
  }
  const auto est = tail::hill_estimate(constant);
  ASSERT_FALSE(est.ok());
  EXPECT_FALSE(est.error().message.empty());
}

TEST(EdgeInputs, LlcdErrorsOnDegenerateInput) {
  EXPECT_FALSE(tail::llcd_fit(kEmpty).ok());
  EXPECT_FALSE(tail::llcd_fit(kOne).ok());
  EXPECT_FALSE(tail::llcd_plot(kEmpty).ok());
  // A constant sample has one distinct CCDF point: below any sane
  // min_points. Must be the paper's "NA", not a garbage regression.
  const std::vector<double> constant(500, 7.0);
  EXPECT_FALSE(tail::llcd_fit(constant).ok());
  // All-nonpositive: no log-scale points exist at all.
  const std::vector<double> nonpositive(500, -2.0);
  EXPECT_FALSE(tail::llcd_fit(nonpositive).ok());
}

TEST(EdgeInputs, KpssErrorsBelowMinimumLength) {
  EXPECT_FALSE(stats::kpss_test(kEmpty).ok());
  EXPECT_FALSE(stats::kpss_test(kOne).ok());
  const std::vector<double> nine(9, 1.0);
  EXPECT_FALSE(stats::kpss_test(nine).ok());
}

TEST(EdgeInputs, KpssOnConstantSeriesIsFiniteOrError) {
  // Zero residual variance makes eta 0/0; either refuse or report a finite
  // statistic with a decidable verdict.
  const std::vector<double> constant(256, 5.0);
  for (auto null : {stats::KpssNull::kLevel, stats::KpssNull::kTrend}) {
    const auto r = stats::kpss_test(constant, null);
    if (r.ok()) {
      EXPECT_TRUE(std::isfinite(r.value().statistic));
      EXPECT_TRUE(std::isfinite(r.value().p_value));
    }
  }
}

TEST(EdgeInputs, ErrorsNameTheProblem) {
  // The Result errors must be diagnosable, not empty strings.
  const auto hill = tail::hill_estimate(kEmpty);
  ASSERT_FALSE(hill.ok());
  EXPECT_FALSE(hill.error().message.empty());
  const auto llcd = tail::llcd_fit(kOne);
  ASSERT_FALSE(llcd.ok());
  EXPECT_FALSE(llcd.error().message.empty());
  const auto kpss = stats::kpss_test(kEmpty);
  ASSERT_FALSE(kpss.ok());
  EXPECT_FALSE(kpss.error().message.empty());
}

}  // namespace
