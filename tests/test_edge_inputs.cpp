// Degenerate-input behavior across the analysis kernels: empty, single
// point, constant, and all-nonpositive samples must produce a diagnosable
// error (support::Result) or an explicitly absent estimate — never NaN
// estimates or UB. These are the inputs real sparse logs produce (the
// paper's NASA-Pub2 "NA" cells).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "lrd/estimator_suite.h"
#include "online/analyzer.h"
#include "stats/kpss.h"
#include "support/rng.h"
#include "tail/hill.h"
#include "tail/llcd.h"
#include "weblog/streaming_sessionizer.h"

namespace {

using namespace fullweb;

const std::vector<double> kEmpty;
const std::vector<double> kOne{42.0};

TEST(EdgeInputs, HurstSuiteOnEmptyAndSingletonReportsNoEstimates) {
  for (const auto& xs : {kEmpty, kOne}) {
    const auto suite = lrd::hurst_suite(xs);
    EXPECT_TRUE(suite.estimates.empty()) << "n=" << xs.size();
    EXPECT_FALSE(suite.all_indicate_lrd());
  }
}

TEST(EdgeInputs, HurstSuiteOnConstantSeriesHasNoNanEstimates) {
  const std::vector<double> constant(4096, 3.0);
  const auto suite = lrd::hurst_suite(constant);
  // A zero-variance series has no defined H; estimators may either drop out
  // or return a finite value, but never NaN/inf.
  for (const auto& est : suite.estimates) {
    EXPECT_TRUE(std::isfinite(est.h)) << lrd::to_string(est.method);
    if (est.ci95_halfwidth)
      EXPECT_TRUE(std::isfinite(*est.ci95_halfwidth)) << lrd::to_string(est.method);
  }
}

TEST(EdgeInputs, HillPlotErrorsOnTooFewSamples) {
  EXPECT_FALSE(tail::hill_plot(kEmpty).ok());
  EXPECT_FALSE(tail::hill_plot(kOne).ok());
  EXPECT_FALSE(tail::hill_estimate(kEmpty).ok());
  EXPECT_FALSE(tail::hill_estimate(kOne).ok());
}

TEST(EdgeInputs, HillPlotErrorsWithoutPositiveSamples) {
  const std::vector<double> nonpositive(500, -1.0);
  EXPECT_FALSE(tail::hill_plot(nonpositive).ok());
  const std::vector<double> zeros(500, 0.0);
  EXPECT_FALSE(tail::hill_plot(zeros).ok());
}

TEST(EdgeInputs, HillEstimateOnConstantSampleIsADiagnosableError) {
  // log X_(i) - log X_(k+1) == 0 for a constant sample, so alpha is
  // undefined at every k. The plot flags those points NaN by documented
  // contract (see test_tail_hill TiesAtTopYieldNaNNotCrash) — never inf —
  // and the estimate, the user-visible result, must refuse cleanly.
  const std::vector<double> constant(500, 7.0);
  const auto plot = tail::hill_plot(constant);
  if (plot.ok()) {
    for (double a : plot.value().alpha) EXPECT_FALSE(std::isinf(a));
  }
  const auto est = tail::hill_estimate(constant);
  ASSERT_FALSE(est.ok());
  EXPECT_FALSE(est.error().message.empty());
}

TEST(EdgeInputs, LlcdErrorsOnDegenerateInput) {
  EXPECT_FALSE(tail::llcd_fit(kEmpty).ok());
  EXPECT_FALSE(tail::llcd_fit(kOne).ok());
  EXPECT_FALSE(tail::llcd_plot(kEmpty).ok());
  // A constant sample has one distinct CCDF point: below any sane
  // min_points. Must be the paper's "NA", not a garbage regression.
  const std::vector<double> constant(500, 7.0);
  EXPECT_FALSE(tail::llcd_fit(constant).ok());
  // All-nonpositive: no log-scale points exist at all.
  const std::vector<double> nonpositive(500, -2.0);
  EXPECT_FALSE(tail::llcd_fit(nonpositive).ok());
}

TEST(EdgeInputs, KpssErrorsBelowMinimumLength) {
  EXPECT_FALSE(stats::kpss_test(kEmpty).ok());
  EXPECT_FALSE(stats::kpss_test(kOne).ok());
  const std::vector<double> nine(9, 1.0);
  EXPECT_FALSE(stats::kpss_test(nine).ok());
}

TEST(EdgeInputs, KpssOnConstantSeriesIsFiniteOrError) {
  // Zero residual variance makes eta 0/0; either refuse or report a finite
  // statistic with a decidable verdict.
  const std::vector<double> constant(256, 5.0);
  for (auto null : {stats::KpssNull::kLevel, stats::KpssNull::kTrend}) {
    const auto r = stats::kpss_test(constant, null);
    if (r.ok()) {
      EXPECT_TRUE(std::isfinite(r.value().statistic));
      EXPECT_TRUE(std::isfinite(r.value().p_value));
    }
  }
}

TEST(EdgeInputs, ErrorsNameTheProblem) {
  // The Result errors must be diagnosable, not empty strings.
  const auto hill = tail::hill_estimate(kEmpty);
  ASSERT_FALSE(hill.ok());
  EXPECT_FALSE(hill.error().message.empty());
  const auto llcd = tail::llcd_fit(kOne);
  ASSERT_FALSE(llcd.ok());
  EXPECT_FALSE(llcd.error().message.empty());
  const auto kpss = stats::kpss_test(kEmpty);
  ASSERT_FALSE(kpss.ok());
  EXPECT_FALSE(kpss.error().message.empty());
}

// ---------------------------------------------------------------------------
// Online layer: the same degenerate inputs arriving as a live stream must
// surface as flags and per-estimator error strings, never UB or NaN-filled
// snapshots.

TEST(EdgeInputsOnline, EmptyStreamSnapshotsCleanly) {
  online::OnlineAnalyzer an({}, fullweb::support::Rng(1));
  const online::OnlineSnapshot s = an.snapshot();
  EXPECT_EQ(s.records, 0u);
  EXPECT_EQ(s.window_bins, 0u);
  EXPECT_FALSE(s.kpss.value.has_value());
  EXPECT_FALSE(s.kpss.error.empty());
  EXPECT_FALSE(s.hurst_vt.value.has_value());
  EXPECT_FALSE(s.frs.value.has_value());
  EXPECT_FALSE(s.hill.value.has_value());
  EXPECT_FALSE(s.llcd.value.has_value());
  EXPECT_FALSE(an.snapshot_json().empty());  // valid JSON either way
}

TEST(EdgeInputsOnline, SingleRecordReportsErrorsNotGarbage) {
  online::OnlineAnalyzer an({}, fullweb::support::Rng(1));
  an.add(1000.5, 4096.0);
  const online::OnlineSnapshot s = an.snapshot();
  EXPECT_EQ(s.records, 1u);
  EXPECT_EQ(s.window_bins, 1u);
  EXPECT_EQ(s.tail_count, 1u);
  EXPECT_FALSE(s.kpss.value.has_value());   // one bin: below KPSS minimum
  EXPECT_FALSE(s.hurst_vt.value.has_value());
  EXPECT_FALSE(s.hill.value.has_value());   // one sample: below Hill minimum
  EXPECT_EQ(s.p50, 4096.0);                 // quantiles of one value exist
}

TEST(EdgeInputsOnline, ConstantInterarrivalsAndDuplicateTimestamps) {
  online::OnlineAnalyzer an({}, fullweb::support::Rng(1));
  // 600 arrivals at exactly 1/s, then 50 duplicates of the same second.
  for (int t = 0; t < 600; ++t) an.add(static_cast<double>(t), 100.0);
  for (int i = 0; i < 50; ++i) an.add(599.0, 100.0);
  const online::OnlineSnapshot s = an.snapshot();
  EXPECT_EQ(s.records, 650u);
  EXPECT_FALSE(s.saw_unsorted);  // equal timestamps are in order
  // A constant count series has zero variance: estimators must refuse or
  // stay finite, never NaN. (The duplicate burst makes the last bin 51.)
  if (s.hurst_vt.value) {
    EXPECT_TRUE(std::isfinite(s.hurst_vt.value->h));
  }
  if (s.frs.value) {
    EXPECT_TRUE(std::isfinite(s.frs.value->h));
  }
  if (s.kpss.value) {
    EXPECT_TRUE(std::isfinite(s.kpss.value->statistic));
  }
  // Constant transfer sizes: Hill is degenerate by documented contract.
  EXPECT_FALSE(s.hill.value.has_value());
}

TEST(EdgeInputsOnline, WindowLargerThanStream) {
  online::OnlineOptions o;
  o.block_bins = 1 << 12;
  o.window_blocks = 1 << 10;  // window of 4M bins, stream of 32
  online::OnlineAnalyzer an(o, fullweb::support::Rng(1));
  for (int t = 0; t < 32; ++t) an.add(static_cast<double>(t), 100.0 + t);
  const online::OnlineSnapshot s = an.snapshot();
  // The window starts at the first occupied bin, not at block alignment:
  // no phantom leading zeros.
  EXPECT_EQ(s.window_bins, 32u);
  EXPECT_EQ(s.counts.mean, 1.0);
}

TEST(EdgeInputsOnline, NanAndInfiniteTimestampsAreCountedNotBinned) {
  online::OnlineAnalyzer an({}, fullweb::support::Rng(1));
  an.add(std::numeric_limits<double>::quiet_NaN(), 100.0);
  for (int t = 0; t < 20; ++t) an.add(static_cast<double>(t), 200.0);
  an.add(std::numeric_limits<double>::infinity(), 300.0);
  an.add(-std::numeric_limits<double>::infinity(), 400.0);
  const online::OnlineSnapshot s = an.snapshot();
  EXPECT_EQ(s.invalid_time, 3u);
  EXPECT_EQ(s.records, 20u);
  EXPECT_EQ(s.tail_count, 23u);  // bytes of bad-time records still count
  EXPECT_EQ(s.window_bins, 20u);
  EXPECT_FALSE(an.snapshot_json().empty());
}

TEST(EdgeInputsOnline, NanTimestampRaisesStreamingSessionizerUnsortedFlag) {
  // Regression for the latent mirror of the PR 7 peak bug: NaN fails every
  // '<' comparison, so the old `r.time < last_time_` check silently let a
  // NaN-timestamp stream claim it was sorted while idle eviction was
  // disabled. The negated comparison must flag it.
  weblog::StreamingSessionizer sz;
  sz.add(weblog::Request{10.0, 0, 200, 100});
  sz.add(weblog::Request{std::numeric_limits<double>::quiet_NaN(), 1, 200, 100});
  EXPECT_TRUE(sz.saw_unsorted());
  (void)sz.finish();
  EXPECT_FALSE(sz.saw_unsorted());  // finish() resets all state
}

}  // namespace
