// OnlineAnalyzer contract tests: streaming-vs-batch equivalence (exact when
// the window covers the whole input, tolerance-bounded when the sketch
// samples), snapshot byte-identity across thread counts / chunk sizes /
// file splits, window sliding, and analyzer reuse across files.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "lrd/variance_time.h"
#include "online/analyzer.h"
#include "stats/kpss.h"
#include "support/executor.h"
#include "support/rng.h"
#include "synth/generator.h"
#include "tail/hill.h"
#include "tail/llcd.h"
#include "weblog/clf.h"
#include "weblog/dataset.h"

namespace fullweb::online {
namespace {

struct Event {
  double time;
  double bytes;
};

/// A synthetic ClarkNet-profile request stream (time + transfer size),
/// delivered in arrival order like a live log.
std::vector<Event> synthetic_events(double duration, double scale,
                                    std::uint64_t seed) {
  support::Rng rng(seed);
  synth::GeneratorOptions gen;
  gen.duration = duration;
  gen.scale = scale;
  auto workload =
      synth::generate_workload(synth::ServerProfile::clarknet(), gen, rng);
  EXPECT_TRUE(workload.ok());
  support::Rng rng2(seed + 1);
  std::vector<Event> events;
  for (const auto& e : synth::to_log_entries(workload.value(), rng2))
    events.push_back({e.timestamp, static_cast<double>(e.bytes)});
  return events;
}

/// Window covering the whole stream and a sketch big enough to retain
/// every sample: the configuration under which the analyzer must reproduce
/// the batch pipeline exactly.
OnlineOptions whole_input_options(std::size_t bins_needed, std::size_t n) {
  OnlineOptions o;
  o.block_bins = 256;
  o.window_blocks = (bins_needed / o.block_bins) + 2;  // window >= stream
  o.tail_top_k = n + 1;          // exact top set covers the whole sample
  o.tail_body_capacity = n + 1;  // nothing ever dropped
  o.tail_subsample = n + 1;      // LLCD sees the exact sample
  return o;
}

TEST(OnlineAnalyzer, WholeInputWindowMatchesBatchExactly) {
  const auto events = synthetic_events(3600.0, 0.25, 42);
  ASSERT_GT(events.size(), 1000u);

  OnlineAnalyzer an(whole_input_options(3700, events.size()),
                    support::Rng(7));
  std::vector<double> bytes;
  for (const auto& e : events) {
    an.add(e.time, e.bytes);
    bytes.push_back(e.bytes);
  }

  // The materialized window must BE the batch per-second series.
  std::vector<weblog::Request> reqs;
  for (const auto& e : events)
    reqs.push_back(weblog::Request{e.time, 0, 200,
                                   static_cast<std::uint64_t>(e.bytes)});
  auto ds = weblog::Dataset::from_requests("syn", reqs);
  ASSERT_TRUE(ds.ok());
  const std::vector<double> batch_series = ds.value().requests_per_second();
  const std::vector<double> window = an.window_counts();
  ASSERT_EQ(window.size(), batch_series.size());
  for (std::size_t i = 0; i < window.size(); ++i)
    ASSERT_EQ(window[i], batch_series[i]) << "bin " << i;

  const OnlineSnapshot snap = an.snapshot();

  // KPSS and variance-time: same kernel on the same series => exact.
  const auto kpss = stats::kpss_test(batch_series);
  ASSERT_TRUE(kpss.ok());
  ASSERT_TRUE(snap.kpss.value.has_value());
  EXPECT_EQ(snap.kpss.value->statistic, kpss.value().statistic);
  EXPECT_EQ(snap.kpss.value->lag, kpss.value().lag);
  EXPECT_EQ(snap.kpss.value->p_value, kpss.value().p_value);

  const auto vt = lrd::variance_time_hurst(batch_series);
  ASSERT_TRUE(vt.ok());
  ASSERT_TRUE(snap.hurst_vt.value.has_value());
  EXPECT_EQ(snap.hurst_vt.value->h, vt.value().h);

  // Hill: the sketch retains every order statistic the plot reads.
  const auto hill = tail::hill_estimate(bytes);
  ASSERT_TRUE(hill.ok());
  ASSERT_TRUE(snap.hill.value.has_value());
  EXPECT_EQ(snap.hill.value->alpha, hill.value().alpha);
  EXPECT_EQ(snap.hill.value->k_low, hill.value().k_low);
  EXPECT_EQ(snap.hill.value->k_high, hill.value().k_high);
  EXPECT_EQ(snap.hill.value->stabilized, hill.value().stabilized);

  // LLCD: nothing dropped and the subsample cap exceeds n, so the fitter
  // sees the exact positive sample (ascending; llcd sorts internally).
  EXPECT_EQ(an.sketch().dropped(), 0u);
  std::vector<double> positive;
  for (double b : bytes)
    if (b > 0.0) positive.push_back(b);
  const auto llcd = tail::llcd_fit(positive);
  ASSERT_TRUE(llcd.ok());
  ASSERT_TRUE(snap.llcd.value.has_value());
  EXPECT_EQ(snap.llcd.value->alpha, llcd.value().alpha);
  EXPECT_EQ(snap.llcd.value->theta, llcd.value().theta);
}

TEST(OnlineAnalyzer, SampledTailEstimatesTrackBatchWithinTolerance) {
  // Bounded sketch on a long heavy-tailed stream: estimates come from the
  // retained top-k prefix (Hill, exact as far as the truncated plot goes)
  // and an alias subsample (LLCD). Documented tolerance: Hill within 10%,
  // LLCD within 20% of the batch value on this workload
  // (EXPERIMENTS.md "Online layer" table).
  support::Rng vrng(77);
  const std::size_t n = 40000;
  std::vector<double> bytes;
  std::vector<Event> events;
  bytes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = 100.0 * std::pow(vrng.uniform_pos(), -1.0 / 1.3);
    bytes.push_back(v);
    events.push_back({static_cast<double>(i) * 0.1, v});
  }

  OnlineOptions o;
  o.tail_top_k = 512;
  o.tail_body_capacity = 1024;
  o.tail_subsample = 4096;
  OnlineAnalyzer an(o, support::Rng(3));
  for (const auto& e : events) an.add(e.time, e.bytes);
  EXPECT_GT(an.sketch().dropped(), 0u);

  const OnlineSnapshot snap = an.snapshot();
  const auto hill = tail::hill_estimate(bytes);
  ASSERT_TRUE(hill.ok());
  ASSERT_TRUE(snap.hill.value.has_value());
  EXPECT_NEAR(snap.hill.value->alpha / hill.value().alpha, 1.0, 0.10);

  const auto llcd = tail::llcd_fit(bytes);
  ASSERT_TRUE(llcd.ok());
  ASSERT_TRUE(snap.llcd.value.has_value());
  EXPECT_NEAR(snap.llcd.value->alpha / llcd.value().alpha, 1.0, 0.20);
}

class OnlineAnalyzerFiles : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : files_) std::remove(p.c_str());
  }

  std::string write_file(const std::string& name,
                         const std::vector<std::string>& lines) {
    const std::string path = "/tmp/fullweb_online_" + name + ".log";
    std::ofstream os(path, std::ios::binary);
    for (const auto& l : lines) os << l << "\n";
    files_.push_back(path);
    return path;
  }

  std::vector<std::string> synthetic_lines(double duration, double scale) {
    support::Rng rng(42);
    synth::GeneratorOptions gen;
    gen.duration = duration;
    gen.scale = scale;
    auto workload =
        synth::generate_workload(synth::ServerProfile::clarknet(), gen, rng);
    EXPECT_TRUE(workload.ok());
    support::Rng rng2(43);
    std::vector<std::string> lines;
    for (const auto& e : synth::to_log_entries(workload.value(), rng2))
      lines.push_back(weblog::to_clf_line(e));
    return lines;
  }

  std::vector<std::string> files_;
};

TEST_F(OnlineAnalyzerFiles, SnapshotByteIdenticalAcrossThreadsAndChunks) {
  const auto lines = synthetic_lines(3600.0, 0.2);
  ASSERT_GT(lines.size(), 500u);
  const std::string path = write_file("threads", lines);

  OnlineOptions o;
  o.window_blocks = 4;
  std::string reference;
  for (std::size_t threads : {1u, 2u, 8u}) {
    for (std::size_t chunk : {std::size_t{4096}, std::size_t{1} << 20}) {
      support::Executor ex(threads);
      weblog::ClfReaderOptions reader;
      reader.executor = &ex;
      reader.chunk_bytes = chunk;
      OnlineAnalyzer an(o, support::Rng(11));
      ASSERT_TRUE(an.feed(path, reader).ok());
      const std::string json = an.snapshot_json();
      if (reference.empty())
        reference = json;
      else
        EXPECT_EQ(json, reference)
            << "threads=" << threads << " chunk=" << chunk;
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST_F(OnlineAnalyzerFiles, FileSplitAtEveryBoundaryYieldsIdenticalSnapshot) {
  // One analyzer fed the corpus as a single file vs split into two files at
  // every line boundary: the continuing-stream contract (no state reset
  // between feed() calls) plus absolute-bin keying make every snapshot
  // byte-identical. This is both the chunking-invariance gate and the
  // regression test for analyzer reuse across files.
  auto lines = synthetic_lines(3600.0, 0.25);
  ASSERT_GT(lines.size(), 40u);
  if (lines.size() > 120) lines.resize(120);  // keep the O(n^2) sweep cheap

  OnlineOptions o;
  o.window_blocks = 2;
  o.block_bins = 64;
  const std::string whole = write_file("whole", lines);
  OnlineAnalyzer ref(o, support::Rng(5));
  ASSERT_TRUE(ref.feed(whole).ok());
  const std::string expected = ref.snapshot_json();

  for (std::size_t cut = 0; cut <= lines.size(); cut += 7) {
    const auto mid = lines.begin() + static_cast<std::ptrdiff_t>(cut);
    const std::vector<std::string> head(lines.begin(), mid);
    const std::vector<std::string> tail_lines(mid, lines.end());
    const std::string f1 = write_file("cut_a", head);
    const std::string f2 = write_file("cut_b", tail_lines);
    OnlineAnalyzer an(o, support::Rng(5));
    ASSERT_TRUE(an.feed(f1).ok());
    ASSERT_TRUE(an.feed(f2).ok());
    EXPECT_EQ(an.snapshot_json(), expected) << "cut=" << cut;
  }
}

TEST(OnlineAnalyzer, WindowSlidesAndOldBinsLeave) {
  OnlineOptions o;
  o.block_bins = 8;
  o.window_blocks = 2;
  OnlineAnalyzer an(o, support::Rng(1));
  // 100 seconds of one request per second: window is the last <= 16 bins.
  for (int t = 0; t < 100; ++t) an.add(static_cast<double>(t) + 0.5, 100.0);
  const auto win = an.window_counts();
  EXPECT_LE(win.size(), 16u);
  EXPECT_GE(win.size(), 9u);  // at least one full block plus the partial one
  for (double c : win) EXPECT_EQ(c, 1.0);

  const OnlineSnapshot snap = an.snapshot();
  EXPECT_EQ(snap.records, 100u);       // counters are whole-stream
  EXPECT_EQ(snap.tail_count, 100u);    // sketch is whole-stream
  EXPECT_EQ(snap.window_last_bin, 99);
}

TEST(OnlineAnalyzer, LateRecordsBeforeWindowAreCountedNotBinned) {
  OnlineOptions o;
  o.block_bins = 8;
  o.window_blocks = 2;
  OnlineAnalyzer an(o, support::Rng(1));
  for (int t = 0; t < 100; ++t) an.add(static_cast<double>(t), 50.0);
  an.add(3.0, 50.0);  // far before the current window
  const OnlineSnapshot snap = an.snapshot();
  EXPECT_EQ(snap.late_dropped, 1u);
  EXPECT_TRUE(snap.saw_unsorted);
  EXPECT_EQ(snap.records, 100u);
  EXPECT_EQ(snap.tail_count, 101u);  // the sketch still accepted its bytes
}

TEST(OnlineAnalyzer, RepeatedSnapshotsAreIdempotent) {
  const auto events = synthetic_events(3600.0, 0.1, 9);
  OnlineOptions o;
  OnlineAnalyzer an(o, support::Rng(2));
  for (const auto& e : events) an.add(e.time, e.bytes);
  const std::string a = an.snapshot_json();
  const std::string b = an.snapshot_json();
  EXPECT_EQ(a, b);
  an.add(events.back().time + 1.0, 10.0);
  EXPECT_NE(an.snapshot_json(), a);  // new data must be visible
}

}  // namespace
}  // namespace fullweb::online
