// 1-vs-8-thread bit-identity for the kernels the scaling campaign
// parallelized: the Downey curvature Monte Carlo (per-replicate RngSplitter
// micro-streams), the wavelet transform behind Abry-Veitch (chunked
// per-level convolutions), and the FFT-backed periodogram (chunked butterfly
// stages). Every comparison is exact (==, not near): the contract is that an
// executor changes throughput, never bits. This suite also runs under the
// tsan_determinism gate, where the same assertions double as race detectors.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "lrd/abry_veitch.h"
#include "stats/distributions.h"
#include "stats/periodogram.h"
#include "support/executor.h"
#include "support/rng.h"
#include "tail/curvature.h"
#include "timeseries/wavelet.h"

namespace {

using namespace fullweb;

std::vector<double> pareto_sample(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  const stats::Pareto dist(1.4, 1.0);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

/// A rough LRD-ish series: cumulative noise re-centered, enough structure
/// that every octave and frequency bin carries nontrivial energy.
std::vector<double> walk_series(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs(n);
  double level = 0.0;
  for (auto& x : xs) {
    level += rng.uniform() - 0.5;
    x = level + rng.uniform();
  }
  return xs;
}

TEST(KernelDeterminism, CurvatureMonteCarloBitIdenticalAcrossThreadCounts) {
  const auto xs = pareto_sample(4000, 101);
  tail::CurvatureResult serial{};
  {
    support::Executor ex(1);
    tail::CurvatureOptions opts;
    opts.replicates = 99;
    opts.executor = &ex;
    support::Rng rng(7);
    auto r = tail::curvature_test(xs, rng, opts);
    ASSERT_TRUE(r.ok());
    serial = r.value();
  }
  for (std::size_t threads : {2u, 8u}) {
    support::Executor ex(threads);
    tail::CurvatureOptions opts;
    opts.replicates = 99;
    opts.executor = &ex;
    support::Rng rng(7);
    auto r = tail::curvature_test(xs, rng, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().curvature, serial.curvature) << threads;
    EXPECT_EQ(r.value().p_value, serial.p_value) << threads;
    EXPECT_EQ(r.value().param1, serial.param1) << threads;
    EXPECT_EQ(r.value().param2, serial.param2) << threads;
    EXPECT_EQ(r.value().replicates, serial.replicates) << threads;
  }
}

TEST(KernelDeterminism, CurvatureLognormalNullAlsoBitIdentical) {
  const auto xs = pareto_sample(3000, 202);
  auto run = [&](std::size_t threads) {
    support::Executor ex(threads);
    tail::CurvatureOptions opts;
    opts.model = tail::TailModel::kLognormal;
    opts.replicates = 49;
    opts.executor = &ex;
    support::Rng rng(9);
    auto r = tail::curvature_test(xs, rng, opts);
    EXPECT_TRUE(r.ok());
    return r.ok() ? r.value().p_value : -1.0;
  };
  const double serial = run(1);
  EXPECT_EQ(run(8), serial);
}

TEST(KernelDeterminism, DwtBitIdenticalAcrossThreadCounts) {
  // Large enough that the transform actually chunks (kBlock = 16384).
  const auto xs = walk_series(std::size_t{1} << 16, 303);
  support::Executor one(1);  // dwt's null means the global pool, so pin it
  const auto serial =
      timeseries::dwt(xs, timeseries::WaveletKind::kD4, 4, &one);
  for (std::size_t threads : {2u, 8u}) {
    support::Executor ex(threads);
    const auto parallel =
        timeseries::dwt(xs, timeseries::WaveletKind::kD4, 4, &ex);
    ASSERT_EQ(parallel.octaves(), serial.octaves()) << threads;
    for (std::size_t j = 0; j < serial.octaves(); ++j) {
      ASSERT_EQ(parallel.details[j].size(), serial.details[j].size());
      for (std::size_t k = 0; k < serial.details[j].size(); ++k)
        ASSERT_EQ(parallel.details[j][k], serial.details[j][k])
            << "octave " << j + 1 << " coeff " << k << " threads " << threads;
    }
    ASSERT_EQ(parallel.final_approximation, serial.final_approximation);
  }
}

TEST(KernelDeterminism, AbryVeitchBitIdenticalAcrossThreadCounts) {
  const auto xs = walk_series(std::size_t{1} << 16, 404);
  lrd::AbryVeitchOptions serial_opts;
  support::Executor serial_ex(1);
  serial_opts.executor = &serial_ex;
  const auto serial = lrd::abry_veitch_hurst(xs, serial_opts);
  ASSERT_TRUE(serial.ok());
  for (std::size_t threads : {2u, 8u}) {
    support::Executor ex(threads);
    lrd::AbryVeitchOptions opts;
    opts.executor = &ex;
    const auto parallel = lrd::abry_veitch_hurst(xs, opts);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel.value().estimate.h, serial.value().estimate.h)
        << threads;
    EXPECT_EQ(parallel.value().log2_energy, serial.value().log2_energy)
        << threads;
    EXPECT_EQ(parallel.value().weight, serial.value().weight) << threads;
    EXPECT_EQ(parallel.value().octaves, serial.value().octaves) << threads;
  }
}

TEST(KernelDeterminism, PeriodogramBitIdenticalAcrossThreadCounts) {
  const auto xs = walk_series(std::size_t{1} << 15, 505);
  const auto serial = stats::periodogram(xs);  // default: serial leaf
  for (std::size_t threads : {2u, 8u}) {
    support::Executor ex(threads);
    const auto parallel = stats::periodogram(xs, &ex);
    ASSERT_EQ(parallel.power, serial.power) << threads;
    ASSERT_EQ(parallel.frequency, serial.frequency) << threads;
  }
}

}  // namespace
