// Failure-injection and boundary tests for the weblog substrate: the
// paper's NA/NS cases must degrade gracefully, never crash.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/tail_analysis.h"
#include "weblog/clf.h"
#include "weblog/dataset.h"
#include "weblog/sessionizer.h"

namespace fullweb::weblog {
namespace {

LogEntry entry(double time, const std::string& client, std::uint64_t bytes) {
  LogEntry e;
  e.timestamp = time;
  e.client = client;
  e.method = "GET";
  e.path = "/";
  e.status = 200;
  e.bytes = bytes;
  return e;
}

TEST(DatasetEdge, SingleRequestDataset) {
  auto ds = Dataset::from_entries("one", std::vector<LogEntry>{entry(10, "a", 5)});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().sessions().size(), 1U);
  EXPECT_EQ(ds.value().requests_per_second().size(), 1U);
  EXPECT_FALSE(ds.value().pick(Load::kHigh).ok());  // too few intervals
}

TEST(DatasetEdge, AllRequestsSameSecond) {
  std::vector<LogEntry> entries;
  for (int i = 0; i < 50; ++i)
    entries.push_back(entry(100.0, "c" + std::to_string(i % 5), 1));
  auto ds = Dataset::from_entries("burst", entries);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().sessions().size(), 5U);
  const auto series = ds.value().requests_per_second();
  ASSERT_EQ(series.size(), 1U);
  EXPECT_DOUBLE_EQ(series[0], 50.0);
}

TEST(DatasetEdge, FractionalTimestampsBinCorrectly) {
  std::vector<LogEntry> entries = {entry(0.2, "a", 1), entry(0.9, "a", 1),
                                   entry(1.1, "b", 1)};
  auto ds = Dataset::from_entries("frac", entries);
  ASSERT_TRUE(ds.ok());
  const auto series = ds.value().requests_per_second();
  ASSERT_EQ(series.size(), 2U);
  EXPECT_DOUBLE_EQ(series[0], 2.0);
  EXPECT_DOUBLE_EQ(series[1], 1.0);
}

TEST(DatasetEdge, InterleavedSessionWindowsCounted) {
  // Session starting inside the window but ending outside still counts for
  // the window it STARTED in (the paper's convention for interval tails).
  std::vector<LogEntry> entries = {
      entry(100, "a", 1), entry(1500, "a", 1), entry(2900, "a", 1),
      entry(50, "b", 1),
  };
  auto ds = Dataset::from_entries("win", entries);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().session_lengths(0.0, 200.0).size(), 2U);
  EXPECT_EQ(ds.value().session_lengths(200.0, 5000.0).size(), 0U);
}

TEST(SessionizerEdge, ManyClientsOneRequestEach) {
  std::vector<Request> requests;
  for (std::uint32_t c = 0; c < 1000; ++c)
    requests.push_back({static_cast<double>(c), c, 200, 1});
  const auto sessions = sessionize(requests);
  EXPECT_EQ(sessions.size(), 1000U);
  for (const auto& s : sessions) EXPECT_DOUBLE_EQ(s.length(), 0.0);
}

TEST(SessionizerEdge, ZeroThresholdSplitsEverything) {
  SessionizerOptions opts;
  opts.threshold_seconds = 0.0;
  const std::vector<Request> requests = {
      {0, 1, 200, 1}, {1, 1, 200, 1}, {1, 1, 200, 1}};
  const auto sessions = sessionize(requests, opts);
  // Gap of 0 <= threshold keeps same-second requests together; 0->1 splits.
  ASSERT_EQ(sessions.size(), 2U);
  EXPECT_EQ(sessions[1].requests, 2U);
}

TEST(ClfEdge, WhitespaceAndTabsInPath) {
  // Encoded spaces are fine; a literal quote inside the request ends it.
  const auto e = parse_clf_line(
      "h - - [12/Jan/2004:00:00:00 +0000] \"GET /a%20b.html HTTP/1.0\" 200 1");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().path, "/a%20b.html");
}

TEST(ClfEdge, HugeByteCount) {
  const auto e = parse_clf_line(
      "h - - [12/Jan/2004:00:00:00 +0000] \"GET /big HTTP/1.0\" 200 4294967296");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().bytes, 4294967296ULL);
}

TEST(ClfEdge, NegativeBytesRejected) {
  const auto e = parse_clf_line(
      "h - - [12/Jan/2004:00:00:00 +0000] \"GET / HTTP/1.0\" 200 -5");
  EXPECT_FALSE(e.ok());
}

TEST(ClfEdge, StatusBoundaries) {
  const auto e100 = parse_clf_line(
      "h - - [12/Jan/2004:00:00:00 +0000] \"GET / HTTP/1.0\" 100 0");
  ASSERT_TRUE(e100.ok());
  EXPECT_EQ(e100.value().status, 100);
  const auto e599 = parse_clf_line(
      "h - - [12/Jan/2004:00:00:00 +0000] \"GET / HTTP/1.0\" 599 0");
  ASSERT_TRUE(e599.ok());
  EXPECT_EQ(e599.value().status, 599);
}

TEST(ClfEdge, YearBoundaries) {
  // End-of-year wrap and a pre-2000 date.
  const auto nye = parse_clf_timestamp("[31/Dec/1999:23:59:59 +0000]");
  const auto y2k = parse_clf_timestamp("[01/Jan/2000:00:00:00 +0000]");
  ASSERT_TRUE(nye.ok());
  ASSERT_TRUE(y2k.ok());
  EXPECT_DOUBLE_EQ(y2k.value() - nye.value(), 1.0);
}

TEST(TailAnalysisEdge, AllZeroLengthsIsNA) {
  // Sessions with a single request have zero length; an interval where all
  // sessions are singletons must be NA, not a crash (log10 of 0 hazards).
  std::vector<double> zeros(500, 0.0);
  support::Rng rng(1);
  const auto t = core::analyze_tail(zeros, rng);
  EXPECT_FALSE(t.available);
}

TEST(TailAnalysisEdge, MixedZeroAndPositive) {
  std::vector<double> samples(300, 0.0);
  for (int i = 1; i <= 300; ++i) samples.push_back(10.0 * i);
  support::Rng rng(2);
  core::TailAnalysisOptions opts;
  opts.run_curvature = false;
  const auto t = core::analyze_tail(samples, rng, opts);
  EXPECT_TRUE(t.available);  // positive part analyzed
}


TEST(ClfEdge, CarriageReturnLineEndings) {
  // Windows-style CRLF logs must parse: trailing \r is whitespace.
  std::istringstream is(
      "10.0.0.1 - - [12/Jan/2004:08:30:00 +0000] \"GET /a HTTP/1.0\" 200 1\r\n"
      "10.0.0.2 - - [12/Jan/2004:08:30:01 +0000] \"GET /b HTTP/1.0\" 200 2\r\n");
  std::vector<LogEntry> entries;
  const std::size_t bad =
      parse_clf_stream(is, [&](LogEntry&& e) { entries.push_back(std::move(e)); });
  EXPECT_EQ(bad, 0U);
  ASSERT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries[1].bytes, 2U);
}

TEST(DatasetEdge, PartialTrailingIntervalDroppedFromPick) {
  // 4.5 "hours" of traffic with 1-hour intervals: the trailing 30-minute
  // interval is excluded from Low/Med/High selection (boundary effects),
  // so a burst there cannot be picked as High.
  std::vector<LogEntry> entries;
  for (int i = 0; i < 10; ++i)
    entries.push_back(entry(i * 300.0, "a" + std::to_string(i), 1));        // h0: 10
  for (int i = 0; i < 20; ++i)
    entries.push_back(entry(3600 + i * 150.0, "b" + std::to_string(i), 1)); // h1: 20
  for (int i = 0; i < 15; ++i)
    entries.push_back(entry(7200 + i * 200.0, "c" + std::to_string(i), 1)); // h2: 15
  for (int i = 0; i < 12; ++i)
    entries.push_back(entry(10800 + i * 250.0, "d" + std::to_string(i), 1)); // h3: 12
  for (int i = 0; i < 50; ++i)
    entries.push_back(entry(14400 + i * 30.0, "e" + std::to_string(i), 1));  // h4 (partial): 50
  auto ds = Dataset::from_entries("partial", entries);
  ASSERT_TRUE(ds.ok());
  const auto high = ds.value().pick(weblog::Load::kHigh, 3600.0);
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(high.value().request_count, 20U);  // h1, not the partial burst
}

}  // namespace
}  // namespace fullweb::weblog
