// The behavior-preservation contract of the parallel pipeline: fitting the
// FULL-Web model with a serial executor and with an oversubscribed 8-thread
// pool must produce bit-identical results, because every stochastic stage
// draws from a substream pinned to its position in the analysis, not to the
// execution schedule.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "core/fullweb_model.h"
#include "support/executor.h"
#include "support/rng.h"
#include "support/timing.h"
#include "synth/generator.h"

namespace fullweb::core {
namespace {

struct Fit {
  FullWebModel model;
  std::string report;
};

Fit fit_with_threads(std::size_t threads) {
  support::Rng gen_rng(11);
  synth::GeneratorOptions gen;
  gen.duration = 86400.0;
  gen.scale = 0.35;
  auto ds = synth::generate_dataset(synth::ServerProfile::csee(), gen, gen_rng);
  EXPECT_TRUE(ds.ok());

  support::Executor ex(threads);
  support::StageTimings timings;
  FullWebOptions opts;
  opts.interval_seconds = 4 * 3600.0;
  opts.tails.curvature_replicates = 19;
  opts.arrivals.aggregation_levels = {1, 10};
  opts.executor = &ex;
  opts.timings = &timings;
  support::Rng fit_rng(11);
  auto model = fit_fullweb_model(ds.value(), fit_rng, opts);
  EXPECT_TRUE(model.ok());
  EXPECT_FALSE(timings.empty());
  return {model.value(), render_report(model.value())};
}

void expect_bit_identical(const FullWebModel& a, const FullWebModel& b) {
  // Exact comparisons on purpose: the contract is bitwise equality, not
  // numerical closeness.
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.total_sessions, b.total_sessions);
  EXPECT_EQ(a.mb_transferred, b.mb_transferred);

  const auto& ra = a.request_arrivals;
  const auto& rb = b.request_arrivals;
  ASSERT_EQ(ra.hurst_raw.estimates.size(), rb.hurst_raw.estimates.size());
  for (std::size_t i = 0; i < ra.hurst_raw.estimates.size(); ++i) {
    EXPECT_EQ(ra.hurst_raw.estimates[i].h, rb.hurst_raw.estimates[i].h) << i;
  }
  ASSERT_EQ(ra.hurst_stationary.estimates.size(),
            rb.hurst_stationary.estimates.size());
  for (std::size_t i = 0; i < ra.hurst_stationary.estimates.size(); ++i) {
    EXPECT_EQ(ra.hurst_stationary.estimates[i].h,
              rb.hurst_stationary.estimates[i].h)
        << i;
  }
  ASSERT_EQ(ra.whittle_sweep.size(), rb.whittle_sweep.size());
  ASSERT_EQ(ra.abry_veitch_sweep.size(), rb.abry_veitch_sweep.size());
  for (std::size_t i = 0; i < ra.whittle_sweep.size(); ++i) {
    EXPECT_EQ(ra.whittle_sweep[i].estimate.h, rb.whittle_sweep[i].estimate.h);
  }
  for (std::size_t i = 0; i < ra.abry_veitch_sweep.size(); ++i) {
    EXPECT_EQ(ra.abry_veitch_sweep[i].estimate.h,
              rb.abry_veitch_sweep[i].estimate.h);
  }

  ASSERT_EQ(a.request_poisson.size(), b.request_poisson.size());
  for (const auto& [load, battery] : a.request_poisson) {
    const auto it = b.request_poisson.find(load);
    ASSERT_NE(it, b.request_poisson.end());
    EXPECT_EQ(battery.available, it->second.available);
    EXPECT_EQ(battery.poisson_all(), it->second.poisson_all());
  }

  ASSERT_EQ(a.interval_tails.size(), b.interval_tails.size());
  for (const auto& [load, tails] : a.interval_tails) {
    const auto it = b.interval_tails.find(load);
    ASSERT_NE(it, b.interval_tails.end());
    const auto& ta = tails;
    const auto& tb = it->second;
    EXPECT_EQ(ta.length.available, tb.length.available);
    if (ta.length.llcd && tb.length.llcd)
      EXPECT_EQ(ta.length.llcd->alpha, tb.length.llcd->alpha);
    if (ta.length.curvature_pareto && tb.length.curvature_pareto)
      EXPECT_EQ(ta.length.curvature_pareto->p_value,
                tb.length.curvature_pareto->p_value);
    if (ta.bytes.hill && tb.bytes.hill)
      EXPECT_EQ(ta.bytes.hill->alpha, tb.bytes.hill->alpha);
  }

  if (a.week_tails.length.llcd && b.week_tails.length.llcd)
    EXPECT_EQ(a.week_tails.length.llcd->alpha, b.week_tails.length.llcd->alpha);

  ASSERT_EQ(a.errors.has_value(), b.errors.has_value());
  if (a.errors) {
    EXPECT_EQ(a.errors->request_error_rate, b.errors->request_error_rate);
    EXPECT_EQ(a.errors->session_reliability, b.errors->session_reliability);
  }
}

TEST(FullWebDeterminism, SerialAndParallelAreBitIdentical) {
  const Fit serial = fit_with_threads(1);
  const Fit parallel = fit_with_threads(8);
  expect_bit_identical(serial.model, parallel.model);
  // The rendered report covers every numeric field at full printed
  // precision — the cheapest whole-model equality check we have.
  EXPECT_EQ(serial.report, parallel.report);
}

TEST(FullWebDeterminism, RepeatedParallelRunsAgree) {
  const Fit first = fit_with_threads(8);
  const Fit second = fit_with_threads(8);
  EXPECT_EQ(first.report, second.report);
}

}  // namespace
}  // namespace fullweb::core
