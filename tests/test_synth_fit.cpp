// Round-trip property tests for the FULL-Web model fit: parameters fitted
// from generated traffic must recover the generating profile, and a replay
// from the fitted profile must reproduce the observed fingerprint.
#include "synth/fit.h"

#include <gtest/gtest.h>

#include "stats/descriptive.h"
#include "synth/generator.h"
#include "tail/llcd.h"

namespace fullweb::synth {
namespace {

weblog::Dataset generate(const ServerProfile& profile, double days, double scale,
                         std::uint64_t seed) {
  support::Rng rng(seed);
  GeneratorOptions gen;
  gen.duration = days * 86400.0;
  gen.scale = scale;
  auto ds = generate_dataset(profile, gen, rng);
  EXPECT_TRUE(ds.ok());
  return std::move(ds).value();
}

TEST(FitProfile, RecoversVolumes) {
  const auto truth = ServerProfile::csee();
  const auto ds = generate(truth, 7.0, 1.0, 1);
  const auto fit = fit_profile(ds);
  ASSERT_TRUE(fit.ok());
  const ServerProfile& p = fit.value().profile;
  EXPECT_NEAR(p.week_sessions, truth.week_sessions, 0.25 * truth.week_sessions);
  EXPECT_NEAR(p.requests_mean, truth.requests_mean, 0.25 * truth.requests_mean);
}

TEST(FitProfile, RecoversTailIndices) {
  const auto truth = ServerProfile::clarknet();
  const auto ds = generate(truth, 7.0, 0.5, 2);
  const auto fit = fit_profile(ds);
  ASSERT_TRUE(fit.ok());
  const ServerProfile& p = fit.value().profile;
  EXPECT_NEAR(p.requests_alpha, truth.requests_alpha, 0.5);
  EXPECT_NEAR(p.think.scale_alpha, truth.think.scale_alpha, 0.5);
  EXPECT_NEAR(p.bytes.scale_alpha, truth.bytes.scale_alpha, 0.5);
}

TEST(FitProfile, RecoversDiurnalAmplitude) {
  auto truth = ServerProfile::csee();
  truth.rate_log_sigma = 0.1;  // quiet noise isolates the sinusoid
  const auto ds = generate(truth, 7.0, 1.0, 3);
  const auto fit = fit_profile(ds);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().profile.diurnal_amplitude, truth.diurnal_amplitude,
              0.15);
}

TEST(FitProfile, HurstStableAcrossRefit) {
  // The fitted H is a property of the traffic, not of the fitting seed:
  // refitting a replay of the fitted model recovers nearly the same H.
  // (A directional strong-vs-weak comparison is NOT a valid property here:
  // the heavy-tailed session structure itself contributes LRD, so the
  // request-level H saturates and does not track the rate-FGN knob alone.)
  const auto truth = ServerProfile::csee();
  const auto observed = generate(truth, 4.0, 1.0, 4);
  const auto fit1 = fit_profile(observed);
  ASSERT_TRUE(fit1.ok());
  EXPECT_GT(fit1.value().profile.hurst, 0.5);
  EXPECT_LT(fit1.value().profile.hurst, 1.0);

  support::Rng rng(99);
  GeneratorOptions gen;
  gen.duration = 4.0 * 86400.0;
  auto replay = generate_dataset(fit1.value().profile, gen, rng);
  ASSERT_TRUE(replay.ok());
  const auto fit2 = fit_profile(replay.value());
  ASSERT_TRUE(fit2.ok());
  EXPECT_NEAR(fit2.value().profile.hurst, fit1.value().profile.hurst, 0.12);
}

TEST(FitProfile, MeanBytesPreserved) {
  const auto truth = ServerProfile::nasa_pub2();
  const auto ds = generate(truth, 7.0, 3.0, 6);  // upscale for sample size
  const auto fit = fit_profile(ds);
  ASSERT_TRUE(fit.ok());
  const double observed_mean = static_cast<double>(ds.total_bytes()) /
                               static_cast<double>(ds.requests().size());
  EXPECT_NEAR(fit.value().diagnostics.mean_bytes_per_request, observed_mean,
              1e-6);
}

TEST(FitProfile, ReplayReproducesFingerprint) {
  // The headline closed loop: observed -> fit -> replay, fingerprints agree.
  const auto truth = ServerProfile::clarknet();
  const auto observed = generate(truth, 3.0, 0.3, 7);
  const auto fit = fit_profile(observed);
  ASSERT_TRUE(fit.ok());

  support::Rng rng(8);
  GeneratorOptions gen;
  gen.duration = 3.0 * 86400.0;
  auto replay = generate_dataset(fit.value().profile, gen, rng);
  ASSERT_TRUE(replay.ok());

  const double obs_req = static_cast<double>(observed.requests().size());
  const double rep_req = static_cast<double>(replay.value().requests().size());
  EXPECT_NEAR(rep_req, obs_req, 0.3 * obs_req);

  const auto obs_tail = tail::llcd_fit(observed.session_request_counts());
  const auto rep_tail = tail::llcd_fit(replay.value().session_request_counts());
  ASSERT_TRUE(obs_tail.ok());
  ASSERT_TRUE(rep_tail.ok());
  EXPECT_NEAR(rep_tail.value().alpha, obs_tail.value().alpha, 0.6);
}

TEST(FitProfile, ErrorsOnTinyDataset) {
  const auto truth = ServerProfile::nasa_pub2();
  // A few hours only: under a day -> insufficient.
  support::Rng rng(9);
  GeneratorOptions gen;
  gen.duration = 6 * 3600.0;
  auto ds = generate_dataset(truth, gen, rng);
  ASSERT_TRUE(ds.ok());
  EXPECT_FALSE(fit_profile(ds.value()).ok());
}

TEST(FitProfile, ParameterClampsHold) {
  const auto truth = ServerProfile::wvu();
  const auto ds = generate(truth, 2.0, 0.05, 10);
  const auto fit = fit_profile(ds);
  if (!fit.ok()) return;  // tiny scale may be insufficient; that's fine
  const ServerProfile& p = fit.value().profile;
  EXPECT_GE(p.hurst, 0.51);
  EXPECT_LE(p.hurst, 0.97);
  EXPECT_GE(p.rate_log_sigma, 0.05);
  EXPECT_LE(p.rate_log_sigma, 1.5);
  EXPECT_GE(p.diurnal_amplitude, 0.0);
  EXPECT_LE(p.diurnal_amplitude, 0.95);
}

}  // namespace
}  // namespace fullweb::synth
