// Scalar-vs-SIMD bit-identity suite for the CLF ingest fast path.
//
// Two layers, matching clf_scan.h's contract:
//
//  1. Scanning primitives: SWAR find_byte/find_either/all_digits and the
//     (possibly AVX2) find_byte_long against their byte-at-a-time scalar
//     references, across randomized buffers, every sub-alignment, absent
//     characters, and matches hugging the buffer end. Buffers are
//     heap-exact so the sanitizer gates catch any read past the end.
//  2. The parser: ClfLineParser (zero-copy, SWAR scanning, timestamp memo)
//     against parse_clf_line_reference (the plain std::string executable
//     specification) — identical accept/reject verdicts, reason classes,
//     field values, and error messages over the pinned corpus, hostile
//     random lines, and single-byte mutations of valid lines.
//
// This test is in both the tsan and asan nested ctest gates (see
// cmake/tsan_determinism.cmake, cmake/asan_ubsan.cmake).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "support/rng.h"
#include "weblog/clf.h"
#include "weblog/clf_scan.h"

namespace fullweb::weblog {
namespace {

// ---------------------------------------------------------------------------
// Layer 1: scanning primitives

/// Heap buffer with no slack beyond `size` so overreads trip ASan.
struct ExactBuffer {
  explicit ExactBuffer(const std::string& s)
      : data(new char[s.size() ? s.size() : 1]), size(s.size()) {
    std::memcpy(data, s.data(), s.size());
  }
  ~ExactBuffer() { delete[] data; }
  ExactBuffer(const ExactBuffer&) = delete;
  ExactBuffer& operator=(const ExactBuffer&) = delete;
  char* data;
  std::size_t size;
};

TEST(ClfScan, FindPrimitivesMatchScalarEverywhere) {
  support::Rng rng(4242);
  const std::string alphabet = "ab\n \"\\01:/x";
  const char needles[] = {'\n', ' ', '"', '\\', ':', 'Q'};  // 'Q' never occurs
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t len = rng.below(130);
    std::string s;
    for (std::size_t i = 0; i < len; ++i)
      s.push_back(alphabet[static_cast<std::size_t>(rng.below(alphabet.size()))]);
    const ExactBuffer buf(s);
    const char* base = buf.data;
    // Every start offset exercises every SWAR word alignment; the window
    // always ends at the true buffer end, so a vector overread is visible.
    for (std::size_t off = 0; off <= len && off <= 9; ++off) {
      const char* b = base + off;
      const char* e = base + len;
      for (const char c : needles) {
        const char* want = scan::find_byte_scalar(b, e, c);
        EXPECT_EQ(scan::find_byte(b, e, c) - b, want - b) << trial;
        EXPECT_EQ(scan::find_byte_long(b, e, c) - b, want - b) << trial;
      }
      const char* want2 = scan::find_either_scalar(b, e, '"', '\\');
      EXPECT_EQ(scan::find_either(b, e, '"', '\\') - b, want2 - b) << trial;
    }
  }
}

TEST(ClfScan, MatchAtExactBufferEnd) {
  // The needle as the very last byte, at lengths spanning the 8-byte SWAR
  // and 32-byte AVX2 block boundaries.
  for (std::size_t len = 1; len <= 70; ++len) {
    std::string s(len, 'a');
    s.back() = '\n';
    const ExactBuffer buf(s);
    const char* b = buf.data;
    const char* e = b + len;
    EXPECT_EQ(scan::find_byte(b, e, '\n'), e - 1);
    EXPECT_EQ(scan::find_byte_long(b, e, '\n'), e - 1);
    EXPECT_EQ(scan::find_either(b, e, '\n', 'z'), e - 1);
    // Absent needle: both must walk to `e` and no further.
    EXPECT_EQ(scan::find_byte(b, e, 'z'), e);
    EXPECT_EQ(scan::find_byte_long(b, e, 'z'), e);
  }
}

TEST(ClfScan, AllDigitsMatchesScalarIncludingNeighborBytes) {
  // '/' (0x2f) and ':' (0x3a) sit directly beside the digit range, and
  // bytes >= 0x80 probe the SWAR high-bit analysis — every one must
  // classify exactly like the scalar loop.
  const char probes[] = {'0', '9', '/', ':', 'a',  ' ',
                         static_cast<char>(0x80), static_cast<char>(0xba),
                         static_cast<char>(0xff)};
  support::Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t len = rng.below(40);
    std::string s;
    for (std::size_t i = 0; i < len; ++i)
      s.push_back(static_cast<char>('0' + rng.below(10)));
    if (len > 0 && rng.below(2) == 0)
      s[static_cast<std::size_t>(rng.below(len))] =
          probes[static_cast<std::size_t>(rng.below(sizeof probes))];
    const ExactBuffer buf(s);
    EXPECT_EQ(scan::all_digits(buf.data, len),
              scan::all_digits_scalar(buf.data, len))
        << trial;
  }
  EXPECT_TRUE(scan::all_digits(nullptr, 0));
}

// ---------------------------------------------------------------------------
// Layer 2: fast parser vs reference parser

void expect_parsers_identical(std::string_view line, ClfLineParser& parser) {
  ClfParseReason fast_reason = ClfParseReason::kNone;
  ClfParseReason ref_reason = ClfParseReason::kNone;
  ClfRecord rec;
  const bool fast_ok = parser.parse(line, rec, &fast_reason);
  const auto ref = parse_clf_line_reference(line, &ref_reason);
  ASSERT_EQ(fast_ok, ref.ok()) << "verdict differs on: " << line;
  EXPECT_EQ(fast_reason, ref_reason) << line;
  if (fast_ok) {
    const LogEntry e = ClfLineParser::materialize(rec);
    EXPECT_DOUBLE_EQ(e.timestamp, ref.value().timestamp) << line;
    EXPECT_EQ(e.client, ref.value().client) << line;
    EXPECT_EQ(e.method, ref.value().method) << line;
    EXPECT_EQ(e.path, ref.value().path) << line;
    EXPECT_EQ(e.protocol, ref.value().protocol) << line;
    EXPECT_EQ(e.status, ref.value().status) << line;
    EXPECT_EQ(e.bytes, ref.value().bytes) << line;
  } else {
    EXPECT_EQ(parser.last_error(), ref.error().message) << line;
  }
}

/// The pinned corpus: every accept/reject class, the satellite bugfix
/// cases, and Combined-format variants. Shared by the one-shot and
/// warm-memo passes below.
std::vector<std::string> corpus() {
  return {
      "127.0.0.1 - frank [10/Oct/2000:13:55:36 -0700] \"GET /apache_pb.gif "
      "HTTP/1.0\" 200 2326",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /x HTTP/1.0\" 304 -",
      "h - - [12/Jan/2004:08:30:00 +0000] \"-\" 408 -",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200 1",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /a HTTP/1.1\" 200 5 "
      "\"http://r.example/\" \"Mozilla/4.08\"",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /say\\\"hi\\\" HTTP/1.0\" 200 7",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /a\\\\b HTTP/1.0\" 200 7",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET  /double  space\" 200 7",
      "h - - [12/Jan/2004:08:30:00] \"GET / HTTP/1.0\" 200 1",
      "h - - [31/Dec/2005:23:59:60 -0730] \"GET / HTTP/1.0\" 200 1",
      "h - - [12/Jan/2004:08:30:00 +1400] \"GET / HTTP/1.0\" 200 1",
      "  h - - [12/Jan/2004:08:30:00 +0000] \"GET / HTTP/1.0\" 200 1  ",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /big HTTP/1.0\" 200 4294967296",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200 "
      "999999999999999999999999",  // overflows long long -> reject
      // rejects, one per reason class and satellite
      "",
      "   ",
      "onlyhost",
      "h - -",
      "h - - not-a-timestamp \"GET /\" 200 1",
      "h - - [12/Jan/2004:08:30:00 +0000 \"GET /\" 200 1",
      "h - - [12/Jan/2004:08:30:00 +05] \"GET /\" 200 1",     // truncated tz
      "h - - [12/Jan/2004:08:30:00 +000] \"GET /\" 200 1",    // truncated tz
      "h - - [12/Jan/2004:08:30:00+0000] \"GET /\" 200 1",    // no separator
      "h - - [12/Jan/2004:08:30:00 X0000] \"GET /\" 200 1",   // bad sign
      "h - - [12/Jan/2004:08:30:00 +00x0] \"GET /\" 200 1",   // non-digit tz
      "h - - [12/Jan/2004:08:30:00 +0000junk] \"GET /\" 200 1",
      "h - - [32/Jan/2004:08:30:00 +0000] \"GET /\" 200 1",
      "h - - [12/Jan/2004:08:30:00 +0000] 200 1",
      "h - - [12/Jan/2004:08:30:00 +0000] \"unterminated 200 1",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /trap\\\" 200 1",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" xx 1",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" -5 1",    // satellite
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 9999999 1",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 99 1",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 600 1",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 0200 1",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200 -5",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200 12x4",
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200 1 trailing junk",
  };
}

TEST(ParserIdentity, CorpusColdParser) {
  // A fresh parser per line: no memo, no arena reuse.
  for (const auto& line : corpus()) {
    ClfLineParser parser;
    expect_parsers_identical(line, parser);
  }
}

TEST(ParserIdentity, CorpusWarmParser) {
  // One parser across the whole corpus, twice: the second pass hits the
  // timestamp memo and the arena has accumulated state.
  ClfLineParser parser;
  for (int pass = 0; pass < 2; ++pass)
    for (const auto& line : corpus()) expect_parsers_identical(line, parser);
}

TEST(ParserIdentity, HostileRandomLines) {
  // Unstructured fuzz over an alphabet rich in CLF metacharacters: every
  // line must get the same verdict/reason/fields from both parsers.
  const std::string alphabet = " ab-[]/\\\":+.0129\tJanFeb\"";
  support::Rng rng(1337);
  ClfLineParser parser;
  for (int trial = 0; trial < 3000; ++trial) {
    const std::size_t len = rng.below(90);
    std::string line;
    for (std::size_t i = 0; i < len; ++i)
      line.push_back(
          alphabet[static_cast<std::size_t>(rng.below(alphabet.size()))]);
    expect_parsers_identical(line, parser);
  }
}

TEST(ParserIdentity, SingleByteMutationsOfValidLines) {
  // Near-valid lines probe each parser's boundary checks one byte at a
  // time: flip every position of a canonical line to every character of a
  // hostile set.
  const std::string base =
      "10.0.0.1 - - [12/Jan/2004:08:30:00 +0500] \"GET /a b HTTP/1.0\" 404 17";
  const std::string flips = " \"\\[]:/+-x0";
  ClfLineParser parser;
  for (std::size_t pos = 0; pos < base.size(); ++pos) {
    for (const char f : flips) {
      std::string line = base;
      line[pos] = f;
      expect_parsers_identical(line, parser);
    }
  }
}

TEST(ParserIdentity, ChunkParserMatchesReferenceOverMultiline) {
  // Lines fed through one warm parser in sequence (the chunk pattern),
  // with blank and \r\n-terminated lines mixed in.
  const std::string text =
      "h1 - - [12/Jan/2004:08:30:00 +0000] \"GET /a\" 200 10\r\n"
      "\n"
      "h2 - - [12/Jan/2004:08:30:00 +0000] \"GET /b\" 200 20\n"
      "   \n"
      "h3 - - [12/Jan/2004:08:30:01 +0000] \"GET /c\" 200 30\n";
  ClfLineParser parser;
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    expect_parsers_identical(line, parser);
  }
}

// ---------------------------------------------------------------------------
// Same-second timestamp memo

TEST(TimestampMemo, CorrectAcrossSecondBoundariesAndTimezones) {
  // The memo keys on the raw 26 bracket bytes, so two stamps with the same
  // wall-clock text but different offsets MUST decode to different epochs,
  // and crossing a second boundary and returning must re-yield the first
  // epoch. Interleave aggressively through one parser instance.
  const char* kA0 = "[12/Jan/2004:08:30:00 +0000]";  // epoch E
  const char* kA1 = "[12/Jan/2004:08:30:00 +0100]";  // E - 3600
  const char* kB0 = "[12/Jan/2004:08:30:01 +0000]";  // E + 1
  const char* kC0 = "[12/Jan/2004:08:29:59 -0030]";  // E - 1 + 1800
  const char* sequence[] = {kA0, kA0, kA1, kA0, kB0, kB0, kA1, kC0, kA0, kB0};

  ClfLineParser parser;
  for (const char* ts : sequence) {
    const std::string line =
        "h - - " + std::string(ts) + " \"GET / HTTP/1.0\" 200 1";
    ClfRecord rec;
    ClfParseReason reason = ClfParseReason::kNone;
    ASSERT_TRUE(parser.parse(line, rec, &reason)) << line;
    const auto want = parse_clf_timestamp(ts);
    ASSERT_TRUE(want.ok()) << ts;
    EXPECT_DOUBLE_EQ(rec.timestamp, want.value()) << line;
  }

  // Pin the actual arithmetic, not just self-consistency.
  const double e0 = parse_clf_timestamp(kA0).value();
  EXPECT_DOUBLE_EQ(parse_clf_timestamp(kA1).value(), e0 - 3600.0);
  EXPECT_DOUBLE_EQ(parse_clf_timestamp(kB0).value(), e0 + 1.0);
  EXPECT_DOUBLE_EQ(parse_clf_timestamp(kC0).value(), e0 - 1.0 + 1800.0);
}

TEST(TimestampMemo, MemoHitNeverMasksAMalformedNeighbor) {
  // A valid stamp primes the memo; the following lines reuse the same
  // second but are malformed in ways a lazy prefix compare could miss
  // (wrong closing bracket position, mutated timezone byte).
  ClfLineParser parser;
  ClfRecord rec;
  ClfParseReason reason = ClfParseReason::kNone;
  ASSERT_TRUE(parser.parse(
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200 1", rec, &reason));
  EXPECT_FALSE(parser.parse(
      "h - - [12/Jan/2004:08:30:00 +0000junk] \"GET /\" 200 1", rec, &reason));
  EXPECT_EQ(reason, ClfParseReason::kBadTimestamp);
  EXPECT_FALSE(parser.parse(
      "h - - [12/Jan/2004:08:30:00 +00G0] \"GET /\" 200 1", rec, &reason));
  EXPECT_EQ(reason, ClfParseReason::kBadTimestamp);
  // And a good line right after still parses via the (intact) memo.
  ASSERT_TRUE(parser.parse(
      "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200 1", rec, &reason));
  EXPECT_EQ(reason, ClfParseReason::kNone);
}

TEST(ParserIdentity, ReportSimdTier) {
  // Informational: which tier did find_byte_long run in this build?
  RecordProperty("avx2", scan::compiled_with_avx2() ? "yes" : "no");
  SUCCEED();
}

}  // namespace
}  // namespace fullweb::weblog
