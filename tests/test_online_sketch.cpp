// Property suite for the online layer's mergeable state: the tail sketch's
// merge laws must hold BIT-EXACTLY (merge(A,B) == merge(B,A),
// merge-of-merges == flat build, at every split point of a stream), the
// alias table must be a pure function of its weights, and the canonical
// oldest-to-newest moment-window fold must be chunking-invariant. These are
// the invariants that let per-shard sketches combine in any order under
// core/analyze_fleet and make OnlineAnalyzer snapshots independent of chunk
// placement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <vector>

#include "online/alias_table.h"
#include "online/tail_sketch.h"
#include "stats/prefix_moments.h"
#include "support/rng.h"
#include "tail/hill.h"

namespace fullweb::online {
namespace {

/// Bitwise item-set equality: value, tag, AND priority must match.
void expect_identical(const TailSketch& a, const TailSketch& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.rejected(), b.rejected());
  EXPECT_EQ(a.retained(), b.retained());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  ASSERT_EQ(a.top_items().size(), b.top_items().size());
  for (std::size_t i = 0; i < a.top_items().size(); ++i) {
    EXPECT_EQ(a.top_items()[i].value, b.top_items()[i].value) << "top " << i;
    EXPECT_EQ(a.top_items()[i].tag, b.top_items()[i].tag) << "top " << i;
    EXPECT_EQ(a.top_items()[i].priority, b.top_items()[i].priority);
  }
  ASSERT_EQ(a.body_items().size(), b.body_items().size());
  for (std::size_t i = 0; i < a.body_items().size(); ++i) {
    EXPECT_EQ(a.body_items()[i].value, b.body_items()[i].value) << "body " << i;
    EXPECT_EQ(a.body_items()[i].tag, b.body_items()[i].tag) << "body " << i;
    EXPECT_EQ(a.body_items()[i].priority, b.body_items()[i].priority);
  }
}

/// Pareto(alpha)-ish positive values with a deterministic identity stream.
std::vector<double> pareto_values(std::size_t n, double alpha,
                                  std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    xs.push_back(std::pow(rng.uniform_pos(), -1.0 / alpha));
  return xs;
}

TailSketch build(const std::vector<double>& xs, std::uint64_t salt,
                 std::size_t first_seq, std::size_t count, std::size_t top_k,
                 std::size_t body) {
  TailSketch s(top_k, body);
  for (std::size_t i = 0; i < count; ++i)
    s.insert(xs[first_seq + i], TailSketch::make_tag(salt, first_seq + i));
  return s;
}

TEST(TailSketch, MergeIsCommutativeBitExact) {
  const auto xs = pareto_values(3000, 1.3, 7);
  const std::uint64_t salt = 99;
  TailSketch a = build(xs, salt, 0, 1500, 64, 128);
  TailSketch b = build(xs, salt, 1500, 1500, 64, 128);

  TailSketch ab = a;
  ASSERT_TRUE(ab.merge(b).ok());
  TailSketch ba = b;
  ASSERT_TRUE(ba.merge(a).ok());
  expect_identical(ab, ba);
}

TEST(TailSketch, MergeOfMergesEqualsFlatBuildAtEverySplit) {
  // A small stream split at EVERY boundary: sketch(prefix) + sketch(suffix)
  // must reproduce the flat single-pass sketch bit for bit. Capacities are
  // tiny relative to n so both the top-k eviction and the body
  // priority-race drop paths are exercised at most split points.
  const std::size_t n = 160;
  const auto xs = pareto_values(n, 1.1, 11);
  const std::uint64_t salt = 5;
  const TailSketch flat = build(xs, salt, 0, n, 8, 12);
  for (std::size_t cut = 0; cut <= n; ++cut) {
    TailSketch left = build(xs, salt, 0, cut, 8, 12);
    const TailSketch right = build(xs, salt, cut, n - cut, 8, 12);
    ASSERT_TRUE(left.merge(right).ok());
    expect_identical(flat, left);
  }
}

TEST(TailSketch, FourWayMergeGroupingsAgree) {
  const std::size_t n = 2000;
  const auto xs = pareto_values(n, 1.5, 3);
  const std::uint64_t salt = 17;
  std::vector<TailSketch> parts;
  for (std::size_t i = 0; i < 4; ++i)
    parts.push_back(build(xs, salt, i * 500, 500, 32, 64));
  const TailSketch flat = build(xs, salt, 0, n, 32, 64);

  // ((0+1)+(2+3)) — balanced tree.
  TailSketch t01 = parts[0], t23 = parts[2];
  ASSERT_TRUE(t01.merge(parts[1]).ok());
  ASSERT_TRUE(t23.merge(parts[3]).ok());
  ASSERT_TRUE(t01.merge(t23).ok());
  expect_identical(flat, t01);

  // (3+(2+(1+0))) — reversed chain.
  TailSketch chain = parts[3];
  TailSketch inner = parts[2];
  TailSketch inner2 = parts[1];
  ASSERT_TRUE(inner2.merge(parts[0]).ok());
  ASSERT_TRUE(inner.merge(inner2).ok());
  ASSERT_TRUE(chain.merge(inner).ok());
  expect_identical(flat, chain);
}

TEST(TailSketch, MergeRejectsCapacityMismatch) {
  TailSketch a(8, 8), b(8, 16), c(16, 8);
  EXPECT_FALSE(a.merge(b).ok());
  EXPECT_FALSE(a.merge(c).ok());
}

TEST(TailSketch, TopSetIsExactOrderStatisticsAndHillMatchesBatch) {
  const std::size_t n = 2000;
  const auto xs = pareto_values(n, 1.3, 21);
  // k_max = floor(0.15 * 2000) = 300, so top_k = 400 >= k_max + 1 retains
  // every order statistic the Hill plot reads: bit-identical plots.
  TailSketch s(400, 64);
  for (std::size_t i = 0; i < n; ++i)
    s.insert(xs[i], TailSketch::make_tag(1, i));

  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const auto top = s.top_values();
  ASSERT_EQ(top.size(), 400u);
  for (std::size_t i = 0; i < top.size(); ++i) EXPECT_EQ(top[i], sorted[i]);

  const auto batch = tail::hill_plot(xs);
  const auto sketch_plot = tail::hill_plot_from_top(top, s.count());
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(sketch_plot.ok());
  ASSERT_EQ(batch.value().alpha.size(), sketch_plot.value().alpha.size());
  for (std::size_t i = 0; i < batch.value().alpha.size(); ++i)
    EXPECT_EQ(batch.value().alpha[i], sketch_plot.value().alpha[i]) << i;

  const auto be = tail::hill_estimate(xs);
  const auto se = tail::hill_estimate_from_plot(sketch_plot.value());
  ASSERT_TRUE(be.ok());
  ASSERT_TRUE(se.ok());
  EXPECT_EQ(be.value().alpha, se.value().alpha);
  EXPECT_EQ(be.value().k_low, se.value().k_low);
  EXPECT_EQ(be.value().k_high, se.value().k_high);
  EXPECT_EQ(be.value().stabilized, se.value().stabilized);
}

TEST(TailSketch, QuantilesExactWhenNothingDropped) {
  TailSketch s(16, 200);
  for (std::size_t i = 1; i <= 100; ++i)
    s.insert(static_cast<double>(i), TailSketch::make_tag(2, i));
  EXPECT_EQ(s.dropped(), 0u);
  EXPECT_EQ(s.quantile(0.5), 50.0);
  EXPECT_EQ(s.quantile(0.99), 99.0);
  EXPECT_EQ(s.quantile(1.0), 100.0);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 100.0);

  support::Rng rng(1);
  const auto sample = s.sample_values(1000, rng);
  ASSERT_EQ(sample.size(), 100u);  // exact path: the whole multiset
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(sample[i], static_cast<double>(i + 1));
}

TEST(TailSketch, QuantileApproximationIsCloseUnderSampling) {
  const std::size_t n = 50000;
  const auto xs = pareto_values(n, 1.5, 31);
  TailSketch s(256, 1024);
  for (std::size_t i = 0; i < n; ++i)
    s.insert(xs[i], TailSketch::make_tag(3, i));
  EXPECT_GT(s.dropped(), 0u);

  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const auto exact_q = [&](double q) {
    return sorted[static_cast<std::size_t>(q * (n - 1))];
  };
  // Body-region quantiles: a 1024-point uniform sample pins the rank to
  // ~±0.1%, so the value is close even under a heavy tail.
  EXPECT_NEAR(s.quantile(0.5) / exact_q(0.5), 1.0, 0.15);
  EXPECT_NEAR(s.quantile(0.9) / exact_q(0.9), 1.0, 0.15);
  // p99 is rank 500 from the top — deeper than top_k=256, so it falls in
  // the subsampled body where a ~0.2% rank error spans half the remaining
  // tail mass and the Pareto quantile amplifies it into a large value
  // error. Only sanity-bound it here; the next sketch shows the fix.
  EXPECT_NEAR(s.quantile(0.99) / exact_q(0.99), 1.0, 0.5);

  // Size top_k past the deepest quantile's from-the-top rank and that
  // quantile is answered from the exactly-kept order statistics: the
  // documented way to get accurate deep-tail quantiles from the sketch.
  TailSketch wide(2048, 1024);
  for (std::size_t i = 0; i < n; ++i)
    wide.insert(xs[i], TailSketch::make_tag(3, i));
  EXPECT_EQ(wide.quantile(0.99), exact_q(0.99));
}

TEST(TailSketch, RejectsNonPositiveAndNonFinite) {
  TailSketch s(8, 8);
  s.insert(0.0, 1);
  s.insert(-3.0, 2);
  s.insert(std::numeric_limits<double>::quiet_NaN(), 3);
  s.insert(std::numeric_limits<double>::infinity(), 4);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.rejected(), 4u);
  EXPECT_TRUE(std::isnan(s.quantile(0.5)));
  support::Rng rng(1);
  EXPECT_TRUE(s.sample_values(10, rng).empty());
}

TEST(AliasTable, DeterministicAndEmptySafe) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};
  const AliasTable t1(w), t2(w);
  support::Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(t1.draw(a), t2.draw(b));

  const AliasTable empty(std::vector<double>{});
  EXPECT_TRUE(empty.empty());
  const AliasTable zeros(std::vector<double>{0.0, 0.0});
  EXPECT_TRUE(zeros.empty());
}

TEST(AliasTable, DrawFrequenciesMatchWeights) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};  // total 10
  const AliasTable t(w);
  support::Rng rng(7);
  std::vector<std::size_t> hits(w.size(), 0);
  const std::size_t draws = 200000;
  for (std::size_t i = 0; i < draws; ++i) ++hits[t.draw(rng)];
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double expected = w[i] / 10.0;
    const double got = static_cast<double>(hits[i]) / draws;
    EXPECT_NEAR(got, expected, 0.01) << "index " << i;
  }
}

TEST(AliasTable, SkipsNonFiniteWeights) {
  const std::vector<double> w{1.0, std::numeric_limits<double>::quiet_NaN(),
                              1.0, -5.0};
  const AliasTable t(w);
  support::Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t idx = t.draw(rng);
    EXPECT_TRUE(idx == 0 || idx == 2);
  }
}

TEST(MomentWindow, CanonicalFoldIsChunkingInvariant) {
  // The analyzer's window moments fold per-block summaries oldest to
  // newest. Chunk placement changes WHEN each bin receives its increments,
  // never which bin or how many: counts are exact small-integer additions,
  // so the materialized bins — and the canonical fold over them, bit for
  // bit — are pure functions of the event multiset. Model the mechanism:
  // accumulate the same event stream into bins under three different chunk
  // interleavings and require bitwise-identical folded state.
  support::Rng rng(17);
  const std::size_t nbins = 1024, block = 128, events = 20000;
  std::vector<std::size_t> event_bin(events);
  for (auto& e : event_bin)
    e = static_cast<std::size_t>(rng.below(nbins));

  auto fold_with_chunk = [&](std::size_t chunk) {
    std::vector<double> bins(nbins, 0.0);
    for (std::size_t start = 0; start < events; start += chunk) {
      const std::size_t end = std::min(events, start + chunk);
      for (std::size_t i = start; i < end; ++i) bins[event_bin[i]] += 1.0;
    }
    stats::MomentSummary acc;
    for (std::size_t b0 = 0; b0 < nbins; b0 += block) {
      const auto blk = std::span<const double>(bins).subspan(b0, block);
      acc.merge(stats::MomentSummary::of(blk));
    }
    return acc;
  };
  const auto a = fold_with_chunk(64);
  const auto b = fold_with_chunk(999);
  const auto c = fold_with_chunk(events);
  for (const auto* s : {&b, &c}) {
    EXPECT_EQ(a.count, s->count);
    EXPECT_EQ(a.mean, s->mean);
    EXPECT_EQ(a.m2, s->m2);
    EXPECT_EQ(a.min, s->min);
    EXPECT_EQ(a.max, s->max);
  }
}

}  // namespace
}  // namespace fullweb::online
