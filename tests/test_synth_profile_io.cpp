#include "synth/profile_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace fullweb::synth {
namespace {

TEST(ProfileIo, TextRoundTripPreservesEveryField) {
  const ServerProfile original = ServerProfile::wvu();
  const auto parsed = profile_from_text(profile_to_text(original));
  ASSERT_TRUE(parsed.ok());
  const ServerProfile& p = parsed.value();
  EXPECT_EQ(p.name, original.name);
  EXPECT_DOUBLE_EQ(p.week_sessions, original.week_sessions);
  EXPECT_DOUBLE_EQ(p.requests_mean, original.requests_mean);
  EXPECT_DOUBLE_EQ(p.hurst, original.hurst);
  EXPECT_DOUBLE_EQ(p.rate_log_sigma, original.rate_log_sigma);
  EXPECT_DOUBLE_EQ(p.diurnal_amplitude, original.diurnal_amplitude);
  EXPECT_DOUBLE_EQ(p.diurnal_phase, original.diurnal_phase);
  EXPECT_DOUBLE_EQ(p.trend_per_week, original.trend_per_week);
  EXPECT_DOUBLE_EQ(p.requests_alpha, original.requests_alpha);
  EXPECT_DOUBLE_EQ(p.requests_cap, original.requests_cap);
  EXPECT_DOUBLE_EQ(p.think.p_object, original.think.p_object);
  EXPECT_DOUBLE_EQ(p.think.object_mean, original.think.object_mean);
  EXPECT_DOUBLE_EQ(p.think.page_log_mu, original.think.page_log_mu);
  EXPECT_DOUBLE_EQ(p.think.page_log_sigma, original.think.page_log_sigma);
  EXPECT_DOUBLE_EQ(p.think.scale_alpha, original.think.scale_alpha);
  EXPECT_DOUBLE_EQ(p.think.crawler_requests, original.think.crawler_requests);
  EXPECT_DOUBLE_EQ(p.think.crawler_gap_mean, original.think.crawler_gap_mean);
  EXPECT_DOUBLE_EQ(p.think.gap_cap, original.think.gap_cap);
  EXPECT_DOUBLE_EQ(p.bytes.body_log_mu, original.bytes.body_log_mu);
  EXPECT_DOUBLE_EQ(p.bytes.body_log_sigma, original.bytes.body_log_sigma);
  EXPECT_DOUBLE_EQ(p.bytes.scale_alpha, original.bytes.scale_alpha);
  EXPECT_DOUBLE_EQ(p.bytes.scale_k, original.bytes.scale_k);
  EXPECT_DOUBLE_EQ(p.bytes.scale_cap, original.bytes.scale_cap);
  EXPECT_DOUBLE_EQ(p.bytes.cap, original.bytes.cap);
  EXPECT_DOUBLE_EQ(p.bench_scale, original.bench_scale);
}

TEST(ProfileIo, AllFourProfilesRoundTrip) {
  for (const auto& original : ServerProfile::all_four()) {
    const auto parsed = profile_from_text(profile_to_text(original));
    ASSERT_TRUE(parsed.ok()) << original.name;
    EXPECT_EQ(parsed.value().name, original.name);
    EXPECT_DOUBLE_EQ(parsed.value().requests_alpha, original.requests_alpha);
  }
}

TEST(ProfileIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "\n"
      "name = test  # trailing comment\n"
      "hurst = 0.75\n";
  const auto parsed = profile_from_text(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().name, "test");
  EXPECT_DOUBLE_EQ(parsed.value().hurst, 0.75);
}

TEST(ProfileIo, MissingKeysKeepDefaults) {
  const auto parsed = profile_from_text("name = minimal\n");
  ASSERT_TRUE(parsed.ok());
  const ServerProfile defaults;
  EXPECT_DOUBLE_EQ(parsed.value().hurst, defaults.hurst);
  EXPECT_DOUBLE_EQ(parsed.value().bytes.cap, defaults.bytes.cap);
}

TEST(ProfileIo, UnknownKeyIsError) {
  const auto parsed = profile_from_text("hursted = 0.8\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().category, "parse");
}

TEST(ProfileIo, BadNumberIsError) {
  EXPECT_FALSE(profile_from_text("hurst = high\n").ok());
}

TEST(ProfileIo, MissingEqualsIsError) {
  EXPECT_FALSE(profile_from_text("hurst 0.8\n").ok());
}

TEST(ProfileIo, FileRoundTrip) {
  const std::string path = "/tmp/fullweb_profile_io_test.profile";
  const ServerProfile original = ServerProfile::nasa_pub2();
  ASSERT_TRUE(save_profile(path, original).ok());
  const auto loaded = load_profile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().name, original.name);
  EXPECT_DOUBLE_EQ(loaded.value().requests_cap, original.requests_cap);
  std::remove(path.c_str());
}

TEST(ProfileIo, LoadMissingFileErrors) {
  EXPECT_FALSE(load_profile("/nonexistent/path.profile").ok());
}

}  // namespace
}  // namespace fullweb::synth
