#include "stats/regression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.h"

namespace fullweb::stats {
namespace {

TEST(Ols, ExactLineRecovered) {
  const std::vector<double> x = {0, 1, 2, 3, 4};
  std::vector<double> y;
  for (double xi : x) y.push_back(2.0 + 3.0 * xi);
  const auto fit = ols(x, y);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-12);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Ols, KnownTextbookExample) {
  // Anscombe-like small set; slope/intercept verified against R lm().
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 1, 4, 3, 5};
  const auto fit = ols(x, y);
  EXPECT_NEAR(fit.slope, 0.8, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.6, 1e-12);
  EXPECT_NEAR(fit.r_squared, 0.64, 1e-12);
  // R: summary(lm(y~x))$coefficients["x","Std. Error"] = 0.3464102
  EXPECT_NEAR(fit.stderr_slope, 0.3464102, 1e-6);
}

TEST(Ols, NoisySlopeWithinError) {
  support::Rng rng(3);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    x.push_back(i * 0.01);
    y.push_back(1.0 - 0.5 * x.back() + 0.1 * rng.normal());
  }
  const auto fit = ols(x, y);
  EXPECT_NEAR(fit.slope, -0.5, 4.0 * fit.stderr_slope);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(Ols, DegenerateAllXEqual) {
  const std::vector<double> x = {1, 1, 1};
  const std::vector<double> y = {1, 2, 3};
  const auto fit = ols(x, y);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.r_squared, 0.0);
}

TEST(Ols, TooFewPoints) {
  const std::vector<double> x = {1};
  const std::vector<double> y = {2};
  const auto fit = ols(x, y);
  EXPECT_EQ(fit.n, 1U);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(Ols, PredictEvaluatesLine) {
  LinearFit fit;
  fit.intercept = 1.0;
  fit.slope = 2.0;
  EXPECT_DOUBLE_EQ(fit.predict(3.0), 7.0);
}

TEST(Wls, EqualWeightsMatchOlsPointEstimates) {
  const std::vector<double> x = {1, 2, 3, 4, 5, 6};
  const std::vector<double> y = {2.1, 3.9, 6.2, 7.8, 10.1, 11.9};
  const std::vector<double> w(x.size(), 1.0);
  const auto fo = ols(x, y);
  const auto fw = wls(x, y, w);
  EXPECT_NEAR(fw.slope, fo.slope, 1e-12);
  EXPECT_NEAR(fw.intercept, fo.intercept, 1e-12);
}

TEST(Wls, DownweightedOutlierIgnored) {
  // Perfect line plus one gross outlier with near-zero weight.
  std::vector<double> x = {0, 1, 2, 3, 4, 2.5};
  std::vector<double> y = {1, 3, 5, 7, 9, 100};
  std::vector<double> w = {1, 1, 1, 1, 1, 1e-9};
  const auto fit = wls(x, y, w);
  EXPECT_NEAR(fit.slope, 2.0, 1e-5);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-4);
}

TEST(Wls, SlopeVarianceFromWeights) {
  // With w_i = 1/sigma_i^2, Var(slope) = 1 / sum w (x - xbar)^2.
  const std::vector<double> x = {0, 1, 2, 3};
  const std::vector<double> y = {0, 1, 2, 3};
  const std::vector<double> w = {4, 4, 4, 4};  // sigma = 0.5 each
  const auto fit = wls(x, y, w);
  const double sxx = 4.0 * (2.25 + 0.25 + 0.25 + 2.25);
  EXPECT_NEAR(fit.stderr_slope, std::sqrt(1.0 / sxx), 1e-12);
}

TEST(Quadratic, ExactParabolaRecovered) {
  std::vector<double> x, y;
  for (int i = -5; i <= 5; ++i) {
    x.push_back(i);
    y.push_back(1.5 - 2.0 * i + 0.75 * i * i);
  }
  const auto fit = quadratic_fit(x, y);
  EXPECT_NEAR(fit.c0, 1.5, 1e-9);
  EXPECT_NEAR(fit.c1, -2.0, 1e-9);
  EXPECT_NEAR(fit.c2, 0.75, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Quadratic, StraightLineHasZeroCurvature) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 - 0.5 * i);
  }
  const auto fit = quadratic_fit(x, y);
  EXPECT_NEAR(fit.c2, 0.0, 1e-10);
}

TEST(Quadratic, LargeOffsetConditioning) {
  // Centering inside the fit keeps precision when x is far from 0
  // (log10 of session lengths can cluster around 3).
  std::vector<double> x, y;
  for (int i = 0; i < 30; ++i) {
    const double xi = 1000.0 + i * 0.01;
    x.push_back(xi);
    y.push_back(2.0 + 0.5 * xi - 0.25 * xi * xi);
  }
  const auto fit = quadratic_fit(x, y);
  EXPECT_NEAR(fit.c2, -0.25, 1e-6);
}

TEST(Quadratic, TooFewPoints) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1, 2};
  const auto fit = quadratic_fit(x, y);
  EXPECT_EQ(fit.n, 2U);
  EXPECT_DOUBLE_EQ(fit.c2, 0.0);
}

}  // namespace
}  // namespace fullweb::stats
