// End-to-end integration: synthetic workload -> CLF text -> parser ->
// Dataset -> analyses. Exercises the exact pipeline a downstream user runs
// on real logs, and verifies the text round-trip loses nothing.
#include <gtest/gtest.h>

#include <sstream>

#include "core/stationary.h"
#include "core/tail_analysis.h"
#include "lrd/estimator_suite.h"
#include "synth/generator.h"
#include "weblog/clf.h"
#include "weblog/dataset.h"

namespace fullweb {
namespace {

TEST(EndToEnd, ClfTextRoundTripPreservesAnalysisInputs) {
  support::Rng rng(1);
  synth::GeneratorOptions gen;
  gen.duration = 86400.0;
  gen.scale = 0.5;
  auto workload =
      synth::generate_workload(synth::ServerProfile::csee(), gen, rng);
  ASSERT_TRUE(workload.ok());

  // Emit as CLF text.
  support::Rng rng2(2);
  const auto entries = synth::to_log_entries(workload.value(), rng2);
  std::ostringstream log_text;
  for (const auto& e : entries) log_text << weblog::to_clf_line(e) << '\n';

  // Parse it back.
  std::istringstream is(log_text.str());
  std::vector<weblog::LogEntry> parsed;
  const std::size_t malformed =
      weblog::parse_clf_stream(is, [&](weblog::LogEntry&& e) {
        parsed.push_back(std::move(e));
      });
  EXPECT_EQ(malformed, 0U);
  ASSERT_EQ(parsed.size(), entries.size());

  // Build datasets from both paths; they must agree on every statistic the
  // analyses consume.
  auto direct = weblog::Dataset::from_requests(
      "direct", std::move(workload.value().requests));
  auto via_text = weblog::Dataset::from_entries("text", parsed);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_text.ok());

  EXPECT_EQ(direct.value().requests().size(), via_text.value().requests().size());
  EXPECT_EQ(direct.value().sessions().size(), via_text.value().sessions().size());
  EXPECT_EQ(direct.value().total_bytes(), via_text.value().total_bytes());
  EXPECT_DOUBLE_EQ(direct.value().t0(), via_text.value().t0());
  EXPECT_DOUBLE_EQ(direct.value().t1(), via_text.value().t1());

  const auto series_a = direct.value().requests_per_second();
  const auto series_b = via_text.value().requests_per_second();
  ASSERT_EQ(series_a.size(), series_b.size());
  for (std::size_t i = 0; i < series_a.size(); ++i)
    ASSERT_DOUBLE_EQ(series_a[i], series_b[i]) << "second " << i;

  // Session samples agree too (sessionizer ran on identical inputs).
  const auto lengths_a = direct.value().session_lengths();
  const auto lengths_b = via_text.value().session_lengths();
  ASSERT_EQ(lengths_a.size(), lengths_b.size());
}

TEST(EndToEnd, WvuDayReproducesHeadlinePhenomena) {
  // One WVU day at reduced scale: request arrivals must be non-Poisson and
  // LRD; intra-session characteristics heavy-tailed. This is the paper's
  // core claim chain on a single synthetic input.
  support::Rng rng(3);
  synth::GeneratorOptions gen;
  gen.duration = 86400.0;
  gen.scale = 0.05;
  auto ds = synth::generate_dataset(synth::ServerProfile::wvu(), gen, rng);
  ASSERT_TRUE(ds.ok());

  // LRD of the request series (use the stationarized series: one day has
  // no full diurnal cycle to remove, but the trend is handled).
  const auto series = ds.value().requests_per_second();
  core::StationaryOptions sopts;
  const auto st = core::make_stationary(series, sopts);
  ASSERT_TRUE(st.ok());
  const auto suite = lrd::hurst_suite(st.value().series);
  ASSERT_GE(suite.estimates.size(), 4U);
  const auto* whittle = suite.find(lrd::HurstMethod::kWhittle);
  ASSERT_NE(whittle, nullptr);
  EXPECT_GT(whittle->h, 0.6);

  // Heavy-tailed session length and bytes.
  support::Rng rng2(4);
  core::TailAnalysisOptions topts;
  topts.run_curvature = false;
  const auto lengths = core::analyze_tail(ds.value().session_lengths(), rng2, topts);
  ASSERT_TRUE(lengths.available);
  ASSERT_TRUE(lengths.llcd.has_value());
  EXPECT_LT(lengths.llcd->alpha, 2.6);
  const auto bytes = core::analyze_tail(ds.value().session_byte_counts(), rng2, topts);
  ASSERT_TRUE(bytes.available);
  EXPECT_TRUE(bytes.heavy_tailed());
}

}  // namespace
}  // namespace fullweb
