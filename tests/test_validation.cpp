// Tests for the self-validation harness plumbing (src/validation): the
// Monte Carlo replicate runner's thread-count invariance, gate semantics,
// baseline drift detection, and a micro scenario run exercising the full
// fan-out path deterministically.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "support/executor.h"
#include "support/rng.h"
#include "validation/gates.h"
#include "validation/montecarlo.h"
#include "validation/report.h"
#include "validation/scenario.h"

namespace {

using namespace fullweb;
using namespace fullweb::validation;

// ---------------------------------------------------------------------------
// monte_carlo

std::vector<double> draw_replicates(std::size_t reps, std::size_t threads) {
  support::Rng parent(20260806);
  support::RngSplitter streams(parent, 0);
  support::Executor executor(threads);
  return monte_carlo<double>(reps, streams, executor,
                             [](std::size_t, support::Rng& rng) {
                               double acc = 0.0;
                               for (int i = 0; i < 100; ++i) acc += rng.normal();
                               return acc;
                             });
}

TEST(MonteCarlo, BitIdenticalAcrossThreadCounts) {
  const auto serial = draw_replicates(64, 1);
  const auto parallel4 = draw_replicates(64, 4);
  const auto parallel8 = draw_replicates(64, 8);
  ASSERT_EQ(serial.size(), 64u);
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel8);
}

TEST(MonteCarlo, ReplicatesAreDistinct) {
  const auto xs = draw_replicates(32, 2);
  for (std::size_t a = 0; a < xs.size(); ++a)
    for (std::size_t b = a + 1; b < xs.size(); ++b)
      EXPECT_NE(xs[a], xs[b]);
}

TEST(MonteCarlo, ResultsIndexedByReplicateNotCompletionOrder) {
  support::Rng parent(7);
  support::RngSplitter streams(parent, 0);
  support::Executor executor(4);
  const auto ids = monte_carlo<std::size_t>(
      128, streams, executor,
      [](std::size_t b, support::Rng&) { return b; });
  for (std::size_t b = 0; b < ids.size(); ++b) EXPECT_EQ(ids[b], b);
}

// ---------------------------------------------------------------------------
// Gates

TEST(Gates, IntervalIsInclusiveAndNanNeverPasses) {
  EXPECT_TRUE(make_gate("g", 0.5, 0.0, 1.0).pass);
  EXPECT_TRUE(make_gate("g", 0.0, 0.0, 1.0).pass);
  EXPECT_TRUE(make_gate("g", 1.0, 0.0, 1.0).pass);
  EXPECT_FALSE(make_gate("g", -0.001, 0.0, 1.0).pass);
  EXPECT_FALSE(make_gate("g", 1.001, 0.0, 1.0).pass);
  EXPECT_FALSE(
      make_gate("g", std::numeric_limits<double>::quiet_NaN(), 0.0, 1.0).pass);
  EXPECT_FALSE(
      make_gate("g", std::numeric_limits<double>::infinity(), 0.0, 1.0).pass);
}

TEST(Gates, SlackShrinksWithReplicates) {
  EXPECT_NEAR(proportion_slack(0.5, 100), 3.0 * 0.05, 1e-12);
  EXPECT_GT(proportion_slack(0.95, 48), proportion_slack(0.95, 256));
  EXPECT_NEAR(mean_slack(2.0, 400), 3.0 * 2.0 / 20.0, 1e-12);
  EXPECT_GT(mean_slack(1.0, 10), mean_slack(1.0, 1000));
}

TEST(Gates, AllPass) {
  std::vector<GateCheck> gates{make_gate("a", 0.5, 0.0, 1.0),
                               make_gate("b", 0.5, 0.0, 1.0)};
  EXPECT_TRUE(all_pass(gates));
  gates.push_back(make_gate("c", 2.0, 0.0, 1.0));
  EXPECT_FALSE(all_pass(gates));
}

// ---------------------------------------------------------------------------
// Baseline drift detection

const char* kBaselineDoc = R"({
  "schema": "fullweb-validation-v1",
  "pass": true,
  "hurst": {"cells": [{"bias": 0.01, "estimator": "Whittle"}]}
})";

TEST(DriftCheck, IdenticalDocumentsPass) {
  const auto r = check_against_baseline(kBaselineDoc, kBaselineDoc);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().failed());
  EXPECT_EQ(r.value().drifted, 0u);
  EXPECT_EQ(r.value().missing, 0u);
  EXPECT_GT(r.value().compared, 0u);
}

TEST(DriftCheck, NumericDriftBeyondToleranceFails) {
  const std::string fresh = R"({
    "schema": "fullweb-validation-v1",
    "pass": true,
    "hurst": {"cells": [{"bias": 0.02, "estimator": "Whittle"}]}
  })";
  const auto r = check_against_baseline(kBaselineDoc, fresh);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().failed());
  ASSERT_EQ(r.value().drifted, 1u);
  EXPECT_EQ(r.value().findings[0].path, "hurst.cells[0].bias");
}

TEST(DriftCheck, DriftWithinTolerancePasses) {
  const std::string fresh = R"({
    "schema": "fullweb-validation-v1",
    "pass": true,
    "hurst": {"cells": [{"bias": 0.010000001, "estimator": "Whittle"}]}
  })";
  const auto r = check_against_baseline(kBaselineDoc, fresh, 1e-3, 1e-6);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().failed());
}

TEST(DriftCheck, MissingBaselineLeafFailsNewLeafDoesNot) {
  const std::string missing_bias = R"({
    "schema": "fullweb-validation-v1",
    "pass": true,
    "hurst": {"cells": [{"estimator": "Whittle"}]}
  })";
  const auto gone = check_against_baseline(kBaselineDoc, missing_bias);
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone.value().failed());
  EXPECT_EQ(gone.value().missing, 1u);

  const std::string extra = R"({
    "schema": "fullweb-validation-v1",
    "pass": true,
    "extra_metric": 7.0,
    "hurst": {"cells": [{"bias": 0.01, "estimator": "Whittle"}]}
  })";
  const auto added = check_against_baseline(kBaselineDoc, extra);
  ASSERT_TRUE(added.ok());
  EXPECT_FALSE(added.value().failed());  // fresh-only leaves are informational
  bool saw_new = false;
  for (const auto& f : added.value().findings)
    if (f.kind == "new" && f.path == "extra_metric") saw_new = true;
  EXPECT_TRUE(saw_new);
}

TEST(DriftCheck, TypeChangeIsDrift) {
  const std::string fresh = R"({
    "schema": "fullweb-validation-v1",
    "pass": "yes",
    "hurst": {"cells": [{"bias": 0.01, "estimator": "Whittle"}]}
  })";
  const auto r = check_against_baseline(kBaselineDoc, fresh);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().failed());
}

TEST(DriftCheck, MalformedDocumentIsAnError) {
  EXPECT_FALSE(check_against_baseline("{", kBaselineDoc).ok());
  EXPECT_FALSE(check_against_baseline(kBaselineDoc, "not json").ok());
}

// ---------------------------------------------------------------------------
// Micro scenario run: tiny replicate counts through the real fan-out path.
// Gate verdicts at this scale are meaningless; what must hold is structure
// and bit-identical aggregation across thread counts.

TestsScenarioResult micro_tests_scenario(std::size_t threads) {
  TestsScenarioConfig config;
  config.replicates = 4;
  config.poisson_null.t1 = 1800.0;
  config.poisson_alt.t1 = 1800.0;
  config.kpss_null.n = 256;
  config.kpss_alt.n = 256;
  support::Executor executor(threads);
  return run_tests_scenario(config, support::Rng(99), executor);
}

TEST(Scenario, MicroTestsScenarioIsThreadCountInvariant) {
  const auto serial = micro_tests_scenario(1);
  const auto parallel = micro_tests_scenario(4);
  ASSERT_EQ(serial.cells.size(), 4u);  // poisson/kpss x null/contaminated
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].test, parallel.cells[i].test);
    EXPECT_EQ(serial.cells[i].rejections, parallel.cells[i].rejections);
    EXPECT_EQ(serial.cells[i].failures, parallel.cells[i].failures);
    EXPECT_EQ(serial.cells[i].rejection_rate, parallel.cells[i].rejection_rate);
  }
  ASSERT_EQ(serial.gates.size(), parallel.gates.size());
  for (std::size_t i = 0; i < serial.gates.size(); ++i) {
    EXPECT_EQ(serial.gates[i].name, parallel.gates[i].name);
    EXPECT_EQ(serial.gates[i].observed, parallel.gates[i].observed);
  }
}

TEST(Scenario, HurstBandsCoverTheGrid) {
  // Every (method, H) the scenario gates on must have a sane documented band.
  for (auto method :
       {lrd::HurstMethod::kVarianceTime, lrd::HurstMethod::kRoverS,
        lrd::HurstMethod::kPeriodogram, lrd::HurstMethod::kWhittle,
        lrd::HurstMethod::kAbryVeitch}) {
    for (double h : {0.5, 0.6, 0.7, 0.8, 0.9}) {
      const BiasBand band = hurst_bias_band(method, h);
      EXPECT_LT(band.lo, band.hi);
      EXPECT_LE(std::abs(band.lo), 0.2);
      EXPECT_LE(std::abs(band.hi), 0.2);
    }
  }
  for (double h : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    EXPECT_GT(hurst_coverage_band(lrd::HurstMethod::kWhittle, h), 0.0);
    const double av = hurst_coverage_band(lrd::HurstMethod::kAbryVeitch, h);
    EXPECT_GT(av, 0.0);
    EXPECT_LT(av, 0.25);  // under-coverage beyond this is a defect, not a band
  }
}

}  // namespace
