// Tests for the bench_compare comparison library (tools/bench_compare_lib.h):
// the regression-gate semantics the CI perf check depends on — malformed
// input rejection, unit normalization, threshold verdicts, and the
// missing-baseline-key-fails rule.
#include "bench_compare_lib.h"

#include <gtest/gtest.h>

#include <string>

namespace {

using namespace fullweb::benchcmp;

std::string bench_doc(const std::string& rows) {
  return "{\"context\": {\"date\": \"x\"}, \"benchmarks\": [" + rows + "]}";
}

TEST(BenchCompareParse, MalformedJsonIsAnError) {
  const auto r = parse_results("{\"benchmarks\": [", "cpu_time");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("malformed"), std::string::npos);
}

TEST(BenchCompareParse, MissingBenchmarksArrayIsAnError) {
  EXPECT_FALSE(parse_results("{}", "cpu_time").ok());
  EXPECT_FALSE(parse_results("{\"benchmarks\": 7}", "cpu_time").ok());
  EXPECT_FALSE(parse_results("[1,2,3]", "cpu_time").ok());
}

TEST(BenchCompareParse, ReadsMetricWithUnitNormalization) {
  const auto r = parse_results(
      bench_doc(R"(
        {"name": "bm_ns", "cpu_time": 250.0, "time_unit": "ns"},
        {"name": "bm_us", "cpu_time": 2.0,   "time_unit": "us"},
        {"name": "bm_ms", "cpu_time": 3.0,   "time_unit": "ms"},
        {"name": "bm_s",  "cpu_time": 4.0,   "time_unit": "s"})"),
      "cpu_time");
  ASSERT_TRUE(r.ok());
  const BenchMap& m = r.value();
  ASSERT_EQ(m.size(), 4u);
  EXPECT_DOUBLE_EQ(m.at("bm_ns").time, 250.0);
  EXPECT_DOUBLE_EQ(m.at("bm_us").time, 2000.0);
  EXPECT_DOUBLE_EQ(m.at("bm_ms").time, 3e6);
  EXPECT_DOUBLE_EQ(m.at("bm_s").time, 4e9);
}

TEST(BenchCompareParse, FallsBackToRealTimeAndSkipsAggregates) {
  const auto r = parse_results(
      bench_doc(R"(
        {"name": "bm_plain", "real_time": 100.0, "time_unit": "ns"},
        {"name": "bm_plain_mean", "aggregate_name": "mean",
         "cpu_time": 101.0, "time_unit": "ns"},
        {"name": "bm_no_time"})"),
      "cpu_time");
  ASSERT_TRUE(r.ok());
  const BenchMap& m = r.value();
  ASSERT_EQ(m.size(), 1u);  // aggregate and time-less rows skipped
  EXPECT_DOUBLE_EQ(m.at("bm_plain").time, 100.0);
}

TEST(BenchCompareCompare, ThresholdSeparatesOkImprovedRegression) {
  BenchMap base{{"a", {100.0, 0.0}}, {"b", {100.0, 0.0}}, {"c", {100.0, 0.0}}};
  BenchMap fresh{{"a", {105.0, 0.0}},   // +5%: within threshold
                 {"b", {80.0, 0.0}},    // -20%: improved
                 {"c", {125.0, 0.0}}};  // +25%: regression
  const CompareReport report = compare(base, fresh, 0.10);
  EXPECT_EQ(report.compared, 3);
  EXPECT_EQ(report.regressions, 1);
  EXPECT_EQ(report.missing, 0);
  EXPECT_TRUE(report.failed());
  ASSERT_EQ(report.rows.size(), 3u);
  EXPECT_EQ(report.rows[0].verdict, Verdict::kOk);          // "a"
  EXPECT_EQ(report.rows[1].verdict, Verdict::kImproved);    // "b"
  EXPECT_EQ(report.rows[2].verdict, Verdict::kRegression);  // "c"
}

TEST(BenchCompareCompare, MissingBaselineKeyFailsTheGate) {
  BenchMap base{{"kept", {100.0, 0.0}}, {"renamed", {100.0, 0.0}}};
  BenchMap fresh{{"kept", {100.0, 0.0}}, {"renamed_v2", {50.0, 0.0}}};
  const CompareReport report = compare(base, fresh, 0.10);
  EXPECT_EQ(report.missing, 1);
  EXPECT_EQ(report.regressions, 0);
  EXPECT_TRUE(report.failed());  // a dropped bench must not shrink the gate
  // The fresh-only benchmark is reported informationally, not as a failure.
  bool saw_new = false;
  for (const auto& row : report.rows)
    if (row.name == "renamed_v2") saw_new = row.verdict == Verdict::kNew;
  EXPECT_TRUE(saw_new);
}

TEST(BenchCompareCompare, IdenticalRunsPass) {
  BenchMap base{{"a", {100.0, 0.0}}, {"b", {5.5, 0.0}}};
  const CompareReport report = compare(base, base, 0.10);
  EXPECT_EQ(report.compared, 2);
  EXPECT_FALSE(report.failed());
  for (const auto& row : report.rows) EXPECT_EQ(row.verdict, Verdict::kOk);
}

TEST(BenchCompareLoad, UnreadablePathIsAnError) {
  const auto r = load_results("/nonexistent/bench.json", "cpu_time");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("cannot open"), std::string::npos);
}

TEST(BenchCompareRender, MentionsRegressionsAndMissing) {
  BenchMap base{{"a", {100.0, 0.0}}, {"gone", {1.0, 0.0}}};
  BenchMap fresh{{"a", {150.0, 0.0}}};
  const std::string table = render(compare(base, fresh, 0.10), 0.10);
  EXPECT_NE(table.find("REGRESSION"), std::string::npos);
  EXPECT_NE(table.find("MISSING"), std::string::npos);
  EXPECT_NE(table.find("1 regression(s), 1 missing"), std::string::npos);
}

// --min-speedup mode: the scaling-floor gate over bench_parallel_scaling's
// speedup-annotated result files.

std::string scaling_doc() {
  return bench_doc(R"(
      {"name": "fullweb_fit/threads:1", "real_time": 4.0e9, "time_unit": "ns",
       "speedup": 1.0, "speedup_source": "measured"},
      {"name": "fullweb_fit/threads:2", "real_time": 2.2e9, "time_unit": "ns",
       "speedup": 1.8, "speedup_source": "measured"},
      {"name": "fullweb_fit/threads:4", "real_time": 1.4e9, "time_unit": "ns",
       "speedup": 2.9, "speedup_source": "modeled"},
      {"name": "no_speedup_row", "real_time": 1.0, "time_unit": "ns"})");
}

TEST(BenchCompareSpeedup, FloorPassesAndFails) {
  const auto pass = check_min_speedup(scaling_doc(), 2.5, "threads:4");
  ASSERT_TRUE(pass.ok());
  EXPECT_EQ(pass.value().checked, 1);
  EXPECT_EQ(pass.value().failures, 0);
  EXPECT_FALSE(pass.value().failed());
  ASSERT_EQ(pass.value().rows.size(), 1u);
  EXPECT_EQ(pass.value().rows[0].name, "fullweb_fit/threads:4");
  EXPECT_DOUBLE_EQ(pass.value().rows[0].speedup, 2.9);
  EXPECT_EQ(pass.value().rows[0].source, "modeled");
  EXPECT_TRUE(pass.value().rows[0].pass);

  const auto fail = check_min_speedup(scaling_doc(), 3.5, "threads:4");
  ASSERT_TRUE(fail.ok());
  EXPECT_EQ(fail.value().failures, 1);
  EXPECT_TRUE(fail.value().failed());
}

TEST(BenchCompareSpeedup, EmptyFilterChecksEveryAnnotatedRow) {
  // The threads:1 row (speedup 1.0) drags the gate below a 1.5 floor; rows
  // without a speedup field are ignored, not failed.
  const auto r = check_min_speedup(scaling_doc(), 1.5, "");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().checked, 3);
  EXPECT_EQ(r.value().failures, 1);
  EXPECT_TRUE(r.value().failed());
}

TEST(BenchCompareSpeedup, ZeroMatchesFailsTheGate) {
  // A renamed benchmark must not silently disarm the floor.
  const auto r = check_min_speedup(scaling_doc(), 2.5, "threads:16");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().checked, 0);
  EXPECT_TRUE(r.value().failed());
}

TEST(BenchCompareSpeedup, MalformedInputMirrorsParseErrors) {
  EXPECT_FALSE(check_min_speedup("{\"benchmarks\": [", 1.0, "").ok());
  EXPECT_FALSE(check_min_speedup("{}", 1.0, "").ok());
}

TEST(BenchCompareSpeedup, RenderNamesTheVerdicts) {
  const auto ok = check_min_speedup(scaling_doc(), 2.5, "threads:4");
  ASSERT_TRUE(ok.ok());
  const std::string table = render_speedup(ok.value(), 2.5, "threads:4");
  EXPECT_NE(table.find("fullweb_fit/threads:4"), std::string::npos);
  EXPECT_NE(table.find("modeled"), std::string::npos);
  EXPECT_NE(table.find("1/1 benchmark(s) at or above 2.50x"), std::string::npos);

  const auto below = check_min_speedup(scaling_doc(), 3.5, "threads:4");
  ASSERT_TRUE(below.ok());
  EXPECT_NE(render_speedup(below.value(), 3.5, "threads:4").find("BELOW FLOOR"),
            std::string::npos);

  const auto none = check_min_speedup(scaling_doc(), 2.5, "threads:16");
  ASSERT_TRUE(none.ok());
  EXPECT_NE(render_speedup(none.value(), 2.5, "threads:16")
                .find("no benchmarks matching"),
            std::string::npos);
}

TEST(BenchCompareBuildType, BinaryStampWinsOverLibraryField) {
  // The system libbenchmark reports library_build_type "debug" even for our
  // -O2 -DNDEBUG binaries; the custom binary_build_type stamp must win.
  const std::string doc = R"({"context": {"library_build_type": "debug",
      "binary_build_type": "release"}, "benchmarks": []})";
  EXPECT_EQ(detect_build_type(doc), "release");
  EXPECT_FALSE(is_debug_build(doc));
}

TEST(BenchCompareBuildType, FallsBackToLibraryField) {
  const std::string doc =
      R"({"context": {"library_build_type": "debug"}, "benchmarks": []})";
  EXPECT_EQ(detect_build_type(doc), "debug");
  EXPECT_TRUE(is_debug_build(doc));
}

TEST(BenchCompareBuildType, MissingFieldsAreUnknownNotDebug) {
  // Old baselines without either stamp must not retroactively fail.
  EXPECT_EQ(detect_build_type(R"({"context": {}, "benchmarks": []})"), "");
  EXPECT_EQ(detect_build_type(R"({"benchmarks": []})"), "");
  EXPECT_EQ(detect_build_type("not json at all"), "");
  EXPECT_FALSE(is_debug_build(R"({"benchmarks": []})"));
}

TEST(BenchCompareBuildType, DebugBinaryStampFailsEvenWithReleaseLibrary) {
  const std::string doc = R"({"context": {"library_build_type": "release",
      "binary_build_type": "debug"}, "benchmarks": []})";
  EXPECT_TRUE(is_debug_build(doc));
}

}  // namespace
