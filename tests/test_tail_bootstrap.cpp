#include "tail/bootstrap.h"

#include <gtest/gtest.h>

#include <vector>

#include "stats/distributions.h"
#include "support/rng.h"

namespace fullweb::tail {
namespace {

std::vector<double> pareto_sample(double alpha, std::size_t n,
                                  std::uint64_t seed) {
  support::Rng rng(seed);
  const stats::Pareto p(alpha, 1.0);
  std::vector<double> xs(n);
  for (auto& x : xs) x = p.sample(rng);
  return xs;
}

TEST(BootstrapLlcd, CoversTrueAlpha) {
  const double alpha = 1.5;
  const auto xs = pareto_sample(alpha, 8000, 1);
  support::Rng rng(2);
  BootstrapOptions opts;
  opts.replicates = 99;
  const auto ci = bootstrap_llcd_ci(xs, rng, opts);
  ASSERT_TRUE(ci.ok());
  EXPECT_LT(ci.value().lo, alpha);
  EXPECT_GT(ci.value().hi, alpha);
  EXPECT_LT(ci.value().lo, ci.value().estimate);
  EXPECT_GT(ci.value().hi, ci.value().estimate);
  EXPECT_GE(ci.value().replicates_used, 50U);
}

TEST(BootstrapHill, CoversTrueAlpha) {
  // Percentile bootstrap is ~95% coverage, and Hill carries a small
  // finite-k bias, so allow a hair of slack on the interval ends.
  const double alpha = 1.6;
  const auto xs = pareto_sample(alpha, 8000, 3);
  support::Rng rng(4);
  BootstrapOptions opts;
  opts.replicates = 99;
  const auto ci = bootstrap_hill_ci(xs, rng, opts);
  ASSERT_TRUE(ci.ok());
  EXPECT_LT(ci.value().lo, alpha + 0.05);
  EXPECT_GT(ci.value().hi, alpha - 0.05);
  EXPECT_GT(ci.value().hi, ci.value().lo);
}

TEST(BootstrapLlcd, WidthShrinksWithSampleSize) {
  support::Rng rng(5);
  BootstrapOptions opts;
  opts.replicates = 99;
  const auto small = bootstrap_llcd_ci(pareto_sample(1.5, 500, 6), rng, opts);
  const auto large = bootstrap_llcd_ci(pareto_sample(1.5, 20000, 7), rng, opts);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(large.value().hi - large.value().lo,
            small.value().hi - small.value().lo);
}

TEST(BootstrapLlcd, WiderThanRegressionSigma) {
  // The point of the module: the least-squares sigma_alpha understates
  // uncertainty because LLCD points are dependent.
  const auto xs = pareto_sample(1.4, 4000, 8);
  const auto fit = llcd_fit(xs);
  ASSERT_TRUE(fit.ok());
  support::Rng rng(9);
  BootstrapOptions opts;
  opts.replicates = 99;
  const auto ci = bootstrap_llcd_ci(xs, rng, opts);
  ASSERT_TRUE(ci.ok());
  const double half_width = 0.5 * (ci.value().hi - ci.value().lo);
  EXPECT_GT(half_width, 1.96 * fit.value().stderr_alpha);
}

TEST(Bootstrap, DeterministicGivenRng) {
  const auto xs = pareto_sample(1.8, 2000, 10);
  support::Rng a(11), b(11);
  BootstrapOptions opts;
  opts.replicates = 49;
  const auto ca = bootstrap_llcd_ci(xs, a, opts);
  const auto cb = bootstrap_llcd_ci(xs, b, opts);
  ASSERT_TRUE(ca.ok());
  ASSERT_TRUE(cb.ok());
  EXPECT_DOUBLE_EQ(ca.value().lo, cb.value().lo);
  EXPECT_DOUBLE_EQ(ca.value().hi, cb.value().hi);
}

TEST(Bootstrap, ErrorsOnBadInputs) {
  support::Rng rng(12);
  EXPECT_FALSE(bootstrap_llcd_ci(std::vector<double>(5, 1.0), rng).ok());
  BootstrapOptions opts;
  opts.level = 1.5;
  EXPECT_FALSE(bootstrap_llcd_ci(pareto_sample(1.5, 100, 13), rng, opts).ok());
  opts.level = 0.95;
  opts.replicates = 5;
  EXPECT_FALSE(bootstrap_llcd_ci(pareto_sample(1.5, 100, 14), rng, opts).ok());
}

TEST(BootstrapHill, FailsGracefullyOnNonPareto) {
  // Lognormal: Hill rarely stabilizes, so most resamples fail and the
  // driver reports the tail-too-sparse error instead of a junk interval.
  support::Rng data_rng(15);
  const stats::Lognormal ln(0.0, 2.0);
  std::vector<double> xs(3000);
  for (auto& x : xs) x = ln.sample(data_rng);
  support::Rng rng(16);
  BootstrapOptions opts;
  opts.replicates = 49;
  HillOptions hopts;
  hopts.stability_cv = 0.02;
  const auto ci = bootstrap_hill_ci(xs, rng, opts, hopts);
  EXPECT_FALSE(ci.ok());
}

}  // namespace
}  // namespace fullweb::tail
