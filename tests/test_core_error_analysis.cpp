#include "core/error_analysis.h"

#include <gtest/gtest.h>

#include <vector>

#include "synth/generator.h"
#include "weblog/dataset.h"

namespace fullweb::core {
namespace {

weblog::LogEntry entry(double time, const std::string& client, int status) {
  weblog::LogEntry e;
  e.timestamp = time;
  e.client = client;
  e.method = "GET";
  e.path = "/";
  e.status = status;
  e.bytes = 100;
  return e;
}

TEST(ErrorAnalysis, StatusClassesCounted) {
  std::vector<weblog::LogEntry> entries = {
      entry(0, "a", 200), entry(1, "a", 200), entry(2, "a", 304),
      entry(3, "b", 404), entry(4, "b", 500), entry(5, "c", 101),
  };
  auto ds = weblog::Dataset::from_entries("t", entries);
  ASSERT_TRUE(ds.ok());
  const auto r = analyze_errors(ds.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().statuses.by_class[1], 1U);
  EXPECT_EQ(r.value().statuses.by_class[2], 2U);
  EXPECT_EQ(r.value().statuses.by_class[3], 1U);
  EXPECT_EQ(r.value().statuses.by_class[4], 1U);
  EXPECT_EQ(r.value().statuses.by_class[5], 1U);
  EXPECT_EQ(r.value().statuses.errors(), 2U);
  EXPECT_EQ(r.value().statuses.total(), 6U);
  EXPECT_NEAR(r.value().request_error_rate, 2.0 / 6.0, 1e-12);
  EXPECT_NEAR(r.value().server_error_rate, 1.0 / 6.0, 1e-12);
}

TEST(ErrorAnalysis, SessionReliability) {
  // Client a: clean session. Client b: one session with two errors.
  // Client c: clean. Reliability = 2/3.
  std::vector<weblog::LogEntry> entries = {
      entry(0, "a", 200), entry(10, "a", 200),
      entry(0, "b", 404), entry(10, "b", 500), entry(20, "b", 200),
      entry(5, "c", 200),
  };
  auto ds = weblog::Dataset::from_entries("t", entries);
  ASSERT_TRUE(ds.ok());
  const auto r = analyze_errors(ds.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().sessions, 3U);
  EXPECT_EQ(r.value().sessions_with_error, 1U);
  EXPECT_NEAR(r.value().session_reliability, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.value().errors_per_bad_session, 2.0);
}

TEST(ErrorAnalysis, ErrorsAttributedToCorrectSessionOfClient) {
  // Client a has two sessions (gap > 30 min); the error is in the second.
  std::vector<weblog::LogEntry> entries = {
      entry(0, "a", 200), entry(60, "a", 200),
      entry(10000, "a", 404), entry(10060, "a", 200),
  };
  auto ds = weblog::Dataset::from_entries("t", entries);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds.value().sessions().size(), 2U);
  const auto r = analyze_errors(ds.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().sessions_with_error, 1U);
  EXPECT_NEAR(r.value().session_reliability, 0.5, 1e-12);
}

TEST(ErrorAnalysis, AllCleanIsFullyReliable) {
  std::vector<weblog::LogEntry> entries = {
      entry(0, "a", 200), entry(1, "b", 200), entry(2, "c", 304)};
  auto ds = weblog::Dataset::from_entries("t", entries);
  ASSERT_TRUE(ds.ok());
  const auto r = analyze_errors(ds.value());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().session_reliability, 1.0);
  EXPECT_DOUBLE_EQ(r.value().request_error_rate, 0.0);
  EXPECT_DOUBLE_EQ(r.value().errors_per_bad_session, 0.0);
}

TEST(ErrorAnalysis, IntervalRatesTrackErrorBursts) {
  std::vector<weblog::LogEntry> entries;
  // First hour clean, second hour has a failure burst.
  for (int i = 0; i < 100; ++i)
    entries.push_back(entry(i * 30.0, "a" + std::to_string(i), 200));
  for (int i = 0; i < 100; ++i)
    entries.push_back(
        entry(3600 + i * 30.0, "b" + std::to_string(i), i < 50 ? 503 : 200));
  auto ds = weblog::Dataset::from_entries("t", entries);
  ASSERT_TRUE(ds.ok());
  ErrorAnalysisOptions opts;
  opts.interval_seconds = 3600.0;
  const auto r = analyze_errors(ds.value(), opts);
  ASSERT_TRUE(r.ok());
  ASSERT_GE(r.value().interval_error_rates.size(), 2U);
  EXPECT_DOUBLE_EQ(r.value().interval_error_rates[0], 0.0);
  EXPECT_NEAR(r.value().interval_error_rates[1], 0.5, 1e-12);
}

TEST(ErrorAnalysis, SyntheticWorkloadHasPlausibleErrorMix) {
  support::Rng rng(1);
  synth::GeneratorOptions gen;
  gen.duration = 86400.0;
  auto ds = synth::generate_dataset(synth::ServerProfile::csee(), gen, rng);
  ASSERT_TRUE(ds.ok());
  const auto r = analyze_errors(ds.value());
  ASSERT_TRUE(r.ok());
  // Generator mix: ~3.5% 4xx + ~1% 5xx.
  EXPECT_NEAR(r.value().request_error_rate, 0.045, 0.01);
  EXPECT_GT(r.value().session_reliability, 0.5);
  EXPECT_LT(r.value().session_reliability, 0.99);
}

}  // namespace
}  // namespace fullweb::core
