// Tests for support::Workspace, the per-thread scratch arenas behind the
// hot kernels: capacity reuse across calls, growth, slot independence, and
// the thread_local isolation guarantee under an Executor fan-out.
#include "support/workspace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "support/executor.h"

namespace {

using fullweb::support::Executor;
using fullweb::support::Workspace;

TEST(Workspace, CapacitySurvivesAcrossCalls) {
  auto& ws = Workspace::for_thread();
  auto& buf = ws.real(7);
  buf.assign(4096, 1.0);
  const double* data = buf.data();
  const std::size_t cap = buf.capacity();
  buf.clear();  // the idiomatic "release": size 0, capacity kept

  auto& again = Workspace::for_thread().real(7);
  EXPECT_EQ(&again, &buf);
  EXPECT_GE(again.capacity(), cap);
  again.resize(4096);
  EXPECT_EQ(again.data(), data);  // no reallocation on reuse at same size
}

TEST(Workspace, BuffersGrowOnDemand) {
  auto& buf = Workspace::for_thread().real(6);
  buf.assign(16, 0.0);
  buf.assign(1 << 18, 2.5);
  ASSERT_EQ(buf.size(), std::size_t{1} << 18);
  EXPECT_EQ(buf.front(), 2.5);
  EXPECT_EQ(buf.back(), 2.5);
}

TEST(Workspace, SlotsDoNotAlias) {
  auto& ws = Workspace::for_thread();
  for (std::size_t s = 0; s < Workspace::kSlots; ++s)
    ws.real(s).assign(64, static_cast<double>(s));
  for (std::size_t s = 0; s < Workspace::kSlots; ++s) {
    ASSERT_EQ(ws.real(s).size(), 64u);
    EXPECT_EQ(ws.real(s)[0], static_cast<double>(s)) << "slot " << s;
    for (std::size_t t = s + 1; t < Workspace::kSlots; ++t)
      EXPECT_NE(ws.real(s).data(), ws.real(t).data());
  }
  // Real and complex slot families are separate storage too.
  ws.cplx(0).assign(64, {1.0, -1.0});
  EXPECT_EQ(ws.real(0)[0], 0.0);
}

TEST(Workspace, EachThreadGetsItsOwnArenaUnderExecutor) {
  Executor executor(4);
  constexpr std::size_t kTasks = 256;
  constexpr std::size_t kLen = 512;

  std::mutex mu;
  std::map<std::thread::id, const Workspace*> arena_of_thread;
  std::atomic<std::size_t> corrupted{0};

  executor.parallel_for(0, kTasks, [&](std::size_t i) {
    Workspace& ws = Workspace::for_thread();
    {
      std::lock_guard<std::mutex> lock(mu);
      auto [it, inserted] = arena_of_thread.emplace(std::this_thread::get_id(), &ws);
      // for_thread() must be stable within a thread.
      if (!inserted && it->second != &ws) ++corrupted;
    }
    // Fill an owned slot with a task-unique pattern, do some work, and
    // verify the pattern: another thread writing into this arena would show
    // up as corruption (and as a race under TSan).
    auto& buf = ws.real(5);
    buf.assign(kLen, static_cast<double>(i));
    double acc = 0.0;
    for (std::size_t j = 0; j < kLen; ++j) acc += buf[j];
    if (acc != static_cast<double>(i) * kLen) ++corrupted;
    for (std::size_t j = 0; j < kLen; ++j)
      if (buf[j] != static_cast<double>(i)) ++corrupted;
  });

  EXPECT_EQ(corrupted.load(), 0u);
  // Distinct threads got distinct arenas.
  std::vector<const Workspace*> arenas;
  for (const auto& [tid, ws] : arena_of_thread) arenas.push_back(ws);
  for (std::size_t a = 0; a < arenas.size(); ++a)
    for (std::size_t b = a + 1; b < arenas.size(); ++b)
      EXPECT_NE(arenas[a], arenas[b]);
  EXPECT_LE(arena_of_thread.size(), 5u);  // 4 workers + possibly the caller
}

}  // namespace
