// Deeper validation of the fGn spectral machinery behind the Whittle
// estimator, and scaling laws of the FGN generator.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "lrd/whittle.h"
#include "stats/descriptive.h"
#include "support/rng.h"
#include "timeseries/fgn.h"
#include "timeseries/series.h"

namespace fullweb::lrd {
namespace {

class SpectralDensityIntegral : public ::testing::TestWithParam<double> {};

TEST_P(SpectralDensityIntegral, IntegratesToUnitVariance) {
  // For unit-variance fGn, \int_{-pi}^{pi} f(l; H) dl = gamma(0) = 1 under
  // our convention E[I(lambda)] = f(lambda). This pins down Paxson's
  // aliasing-sum approximation AND the H-dependent normalization at once.
  const double h = GetParam();
  // The density has an integrable singularity ~ lambda^{1-2H} at 0 which
  // concentrates most of the variance at ultra-low frequencies as H -> 1.
  // Integrate in log-space (lambda = pi e^{-u}) and add the analytic
  // remainder of the singular part below the smallest grid frequency.
  const int n = 200000;
  const double u_max = 200.0;
  double sum = 0.0;
  for (int i = 1; i <= n; ++i) {
    const double u = (static_cast<double>(i) - 0.5) * u_max / n;
    const double lambda = std::numbers::pi * std::exp(-u);
    sum += fgn_spectral_density(lambda, h) * lambda;  // jacobian = lambda
  }
  double integral = 2.0 * sum * (u_max / n);
  // Remainder: f ~ scale * lambda^{1-2H} / 2 below lambda_min.
  const double lambda_min = std::numbers::pi * std::exp(-u_max);
  const double scale = std::sin(std::numbers::pi * h) *
                       std::tgamma(2.0 * h + 1.0) / std::numbers::pi;
  integral += 2.0 * scale * std::pow(lambda_min, 2.0 - 2.0 * h) /
              (2.0 * (2.0 - 2.0 * h));
  EXPECT_NEAR(integral, 1.0, 0.02) << "H=" << h;
}

INSTANTIATE_TEST_SUITE_P(HurstValues, SpectralDensityIntegral,
                         ::testing::Values(0.55, 0.6, 0.7, 0.8, 0.9, 0.95));

TEST(SpectralDensity, LowFrequencyPowerLaw) {
  // f(l) ~ c l^{1-2H} as l -> 0: check the log-log slope near zero.
  for (double h : {0.6, 0.75, 0.9}) {
    const double f1 = fgn_spectral_density(1e-4, h);
    const double f2 = fgn_spectral_density(2e-4, h);
    const double slope = std::log(f2 / f1) / std::log(2.0);
    EXPECT_NEAR(slope, 1.0 - 2.0 * h, 0.01) << "H=" << h;
  }
}

TEST(SpectralDensity, WhiteNoiseIsFlat) {
  const double f_low = fgn_spectral_density(0.01, 0.5);
  const double f_mid = fgn_spectral_density(1.5, 0.5);
  const double f_high = fgn_spectral_density(3.0, 0.5);
  EXPECT_NEAR(f_mid / f_low, 1.0, 0.02);
  EXPECT_NEAR(f_high / f_low, 1.0, 0.02);
}

TEST(WhittleSigma2, RecoversMarginalVariance) {
  // The profiled scale sigma^2 should approximate the fGn variance.
  support::Rng rng(1);
  const double sigma = 3.0;
  auto xs = timeseries::generate_fgn(1 << 14, 0.7, sigma, rng);
  ASSERT_TRUE(xs.ok());
  const auto r = whittle_hurst(xs.value());
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(std::sqrt(r.value().sigma2), sigma, 0.3);
}

class FgnAggregationScaling : public ::testing::TestWithParam<double> {};

TEST_P(FgnAggregationScaling, VarianceFollowsSelfSimilarLaw) {
  // Eq. (2) of the paper: Var(X^(m)) = sigma^2 m^{2H-2}. Estimate the decay
  // exponent from m = 1 vs m = 64 on synthetic fGn.
  const double h = GetParam();
  support::Rng rng(200 + static_cast<std::uint64_t>(h * 100));
  auto xs = timeseries::generate_fgn(1 << 18, h, 1.0, rng);
  ASSERT_TRUE(xs.ok());
  const auto agg = timeseries::aggregate(xs.value(), 64);
  const double v1 = stats::variance_population(xs.value());
  const double v64 = stats::variance_population(agg);
  const double exponent = std::log(v64 / v1) / std::log(64.0);
  EXPECT_NEAR(exponent, 2.0 * h - 2.0, 0.12) << "H=" << h;
}

INSTANTIATE_TEST_SUITE_P(HurstValues, FgnAggregationScaling,
                         ::testing::Values(0.55, 0.7, 0.85));

TEST(Whittle, RobustToMeanShiftAndScaling) {
  // H is invariant to affine transforms of the series.
  support::Rng rng(2);
  auto xs = timeseries::generate_fgn(1 << 13, 0.8, 1.0, rng);
  ASSERT_TRUE(xs.ok());
  const auto base = whittle_hurst(xs.value());
  ASSERT_TRUE(base.ok());
  for (auto& x : xs.value()) x = 5.0 * x + 1000.0;
  const auto shifted = whittle_hurst(xs.value());
  ASSERT_TRUE(shifted.ok());
  EXPECT_NEAR(base.value().estimate.h, shifted.value().estimate.h, 1e-3);
}

TEST(Whittle, SearchIntervalRespected) {
  support::Rng rng(3);
  auto xs = timeseries::generate_fgn(1 << 12, 0.9, 1.0, rng);
  ASSERT_TRUE(xs.ok());
  WhittleOptions opts;
  opts.h_max = 0.7;  // force the boundary
  const auto r = whittle_hurst(xs.value(), opts);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r.value().estimate.h, 0.7 + 1e-6);
}

}  // namespace
}  // namespace fullweb::lrd
