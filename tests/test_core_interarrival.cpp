#include "core/interarrival.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/distributions.h"
#include "support/rng.h"

namespace fullweb::core {
namespace {

std::vector<double> sample_from(const auto& dist, std::size_t n,
                                std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

TEST(InterArrival, ExponentialGapsPickExponential) {
  const auto gaps = sample_from(stats::Exponential(2.0), 5000, 1);
  const auto r = analyze_interarrivals(gaps, /*already_gaps=*/true);
  ASSERT_TRUE(r.ok());
  ASSERT_NE(r.value().best(), nullptr);
  // Exponential should win or sit within 2 AIC of the winner (Weibull with
  // shape ~ 1 is the same model with one extra parameter).
  const auto& fits = r.value().fits;
  const auto exp_it =
      std::find_if(fits.begin(), fits.end(), [](const ModelFit& f) {
        return f.model == InterArrivalModel::kExponential;
      });
  ASSERT_NE(exp_it, fits.end());
  EXPECT_LT(exp_it->delta_aic, 2.5);
  EXPECT_NEAR(exp_it->param1, 2.0, 0.1);
  EXPECT_TRUE(r.value().ad_exponential.has_value());
  EXPECT_TRUE(r.value().ad_exponential->exponential_at_5pct());
  EXPECT_NEAR(r.value().cv, 1.0, 0.05);
}

TEST(InterArrival, ParetoGapsRejectExponential) {
  const auto gaps = sample_from(stats::Pareto(1.3, 0.5), 5000, 2);
  const auto r = analyze_interarrivals(gaps, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().best()->model, InterArrivalModel::kPareto);
  EXPECT_NEAR(r.value().best()->param1, 1.3, 0.1);
  EXPECT_FALSE(r.value().exponential_adequate());
}

TEST(InterArrival, LognormalGapsPickLognormal) {
  const auto gaps = sample_from(stats::Lognormal(1.0, 1.5), 5000, 3);
  const auto r = analyze_interarrivals(gaps, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().best()->model, InterArrivalModel::kLognormal);
  EXPECT_NEAR(r.value().best()->param1, 1.0, 0.1);
  EXPECT_NEAR(r.value().best()->param2, 1.5, 0.1);
}

TEST(InterArrival, WeibullGapsPickWeibull) {
  const auto gaps = sample_from(stats::Weibull(0.6, 2.0), 5000, 4);
  const auto r = analyze_interarrivals(gaps, true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().best()->model, InterArrivalModel::kWeibull);
  EXPECT_NEAR(r.value().best()->param1, 0.6, 0.05);
  EXPECT_NEAR(r.value().best()->param2, 2.0, 0.2);
}

TEST(InterArrival, TimesAreDifferencedWhenNotGaps) {
  // Arrival instants 0, 1, 3, 6 -> gaps 1, 2, 3 (plus enough samples).
  std::vector<double> times;
  double t = 0.0;
  support::Rng rng(5);
  const stats::Exponential e(1.0);
  for (int i = 0; i < 2000; ++i) {
    t += e.sample(rng);
    times.push_back(t);
  }
  const auto r = analyze_interarrivals(times, /*already_gaps=*/false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().n, 1999U);
  EXPECT_NEAR(r.value().mean, 1.0, 0.1);
}

TEST(InterArrival, ZeroGapsFlooredOrDropped) {
  std::vector<double> gaps(200, 0.0);
  for (int i = 0; i < 500; ++i) gaps.push_back(1.0);
  InterArrivalOptions floor_opts;
  floor_opts.zero_gap_floor = 1e-3;
  const auto floored = analyze_interarrivals(gaps, true, floor_opts);
  ASSERT_TRUE(floored.ok());
  EXPECT_EQ(floored.value().n, 700U);

  InterArrivalOptions drop_opts;
  drop_opts.zero_gap_floor = 0.0;
  const auto dropped = analyze_interarrivals(gaps, true, drop_opts);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped.value().n, 500U);
}

TEST(InterArrival, DeltaAicZeroForWinnerAndSorted) {
  const auto gaps = sample_from(stats::Exponential(1.0), 1000, 6);
  const auto r = analyze_interarrivals(gaps, true);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().fits.front().delta_aic, 0.0);
  for (std::size_t i = 1; i < r.value().fits.size(); ++i)
    EXPECT_GE(r.value().fits[i].aic, r.value().fits[i - 1].aic);
}

TEST(InterArrival, ErrorsOnBadInput) {
  EXPECT_FALSE(analyze_interarrivals(std::vector<double>{1, 2, 3}, true).ok());
  EXPECT_FALSE(
      analyze_interarrivals(std::vector<double>(100, -1.0), true).ok());
}

TEST(InterArrival, ModelNames) {
  EXPECT_EQ(to_string(InterArrivalModel::kExponential), "exponential");
  EXPECT_EQ(to_string(InterArrivalModel::kPareto), "Pareto");
  EXPECT_EQ(to_string(InterArrivalModel::kLognormal), "lognormal");
  EXPECT_EQ(to_string(InterArrivalModel::kWeibull), "Weibull");
}

}  // namespace
}  // namespace fullweb::core
