#include "tail/hill.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "stats/distributions.h"
#include "support/rng.h"

namespace fullweb::tail {
namespace {

std::vector<double> sample_from(const auto& dist, std::size_t n,
                                std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

TEST(HillPlot, HandComputedSmallCase) {
  // X_(1)=8, X_(2)=4, X_(3)=2, X_(4)=1, ...: H_{1,n} = log(8/4) = log 2,
  // so alpha_1 = 1/log 2.
  std::vector<double> xs = {8, 4, 2, 1};
  for (int i = 0; i < 96; ++i) xs.push_back(0.5);  // bulk so k_max >= 1
  const auto plot = hill_plot(xs, {});
  ASSERT_TRUE(plot.ok());
  ASSERT_GE(plot.value().k.size(), 1U);
  EXPECT_EQ(plot.value().k[0], 1U);
  EXPECT_NEAR(plot.value().alpha[0], 1.0 / std::log(2.0), 1e-12);
}

class HillRecoversAlpha : public ::testing::TestWithParam<double> {};

TEST_P(HillRecoversAlpha, OnPureParetoSample) {
  const double alpha = GetParam();
  const auto xs = sample_from(stats::Pareto(alpha, 1.0), 30000,
                              70 + static_cast<std::uint64_t>(alpha * 10));
  const auto est = hill_estimate(xs);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est.value().stabilized) << "alpha=" << alpha;
  EXPECT_NEAR(est.value().alpha, alpha, 0.12 * alpha);
}

INSTANTIATE_TEST_SUITE_P(Alphas, HillRecoversAlpha,
                         ::testing::Values(0.8, 1.2, 1.6, 2.0, 2.5));

TEST(HillEstimate, ParetoTailWithLognormalBody) {
  // Semiparametric case: only the tail is Pareto. The estimator restricted
  // to the upper tail should still find alpha.
  support::Rng rng(81);
  std::vector<double> xs;
  const stats::Lognormal body(1.0, 0.5);
  const stats::Pareto tail(1.4, 20.0);
  for (int i = 0; i < 45000; ++i) xs.push_back(body.sample(rng));
  for (int i = 0; i < 5000; ++i) xs.push_back(tail.sample(rng));
  HillOptions opts;
  opts.max_tail_fraction = 0.08;  // stay inside the Pareto region
  const auto est = hill_estimate(xs, opts);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().alpha, 1.4, 0.25);
}

TEST(HillEstimate, NonStabilizingOnLognormal) {
  // A pure lognormal has no Pareto tail: the Hill plot keeps drifting. With
  // a strict stability criterion this reports NS (the paper's annotation).
  const auto xs = sample_from(stats::Lognormal(0.0, 2.0), 30000, 82);
  HillOptions opts;
  opts.stability_cv = 0.02;
  const auto est = hill_estimate(xs, opts);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(est.value().stabilized);
}

TEST(HillEstimate, WindowBoundsReported) {
  const auto xs = sample_from(stats::Pareto(1.5, 1.0), 10000, 83);
  const auto est = hill_estimate(xs);
  ASSERT_TRUE(est.ok());
  EXPECT_GE(est.value().k_low, 10U);
  EXPECT_GT(est.value().k_high, est.value().k_low);
}

TEST(HillPlot, ErrorsOnTinySample) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_FALSE(hill_plot(xs, {}).ok());
}

TEST(HillPlot, IgnoresNonPositiveSamples) {
  auto xs = sample_from(stats::Pareto(1.5, 1.0), 5000, 84);
  xs.push_back(-1.0);
  xs.push_back(0.0);
  const auto plot = hill_plot(xs, {});
  ASSERT_TRUE(plot.ok());
  const auto est = hill_estimate(xs);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().alpha, 1.5, 0.3);
}

TEST(HillPlot, TiesAtTopYieldNaNNotCrash) {
  std::vector<double> xs(200, 100.0);  // massive tie at the max
  for (int i = 0; i < 800; ++i) xs.push_back(1.0 + i * 0.001);
  const auto plot = hill_plot(xs, {});
  ASSERT_TRUE(plot.ok());
  // First k values (inside the tie run) are NaN-flagged.
  EXPECT_TRUE(std::isnan(plot.value().alpha[0]));
}

/// The pre-selection reference: sort ALL positive samples descending, then
/// run the identical Hill recursion. hill_plot() only nth_element-selects
/// and sorts the top k_max + 1 values; since selection preserves the
/// multiset of the prefix, both must agree bit for bit.
HillPlot full_sort_hill_plot(std::span<const double> xs,
                             const HillOptions& options) {
  std::vector<double> sorted;
  for (double v : xs)
    if (v > 0.0) sorted.push_back(v);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::size_t n = sorted.size();
  auto k_max = static_cast<std::size_t>(
      std::floor(options.max_tail_fraction * static_cast<double>(n)));
  if (n > 0 && k_max > n - 1) k_max = n - 1;
  HillPlot plot;
  double sum_log = 0.0;
  for (std::size_t k = 1; k <= k_max; ++k) {
    sum_log += std::log(sorted[k - 1]);
    const double h = sum_log / static_cast<double>(k) - std::log(sorted[k]);
    plot.k.push_back(k);
    plot.alpha.push_back(h > kHillTieEpsilon
                             ? 1.0 / h
                             : std::numeric_limits<double>::quiet_NaN());
  }
  return plot;
}

TEST(HillPlot, SelectionMatchesFullSortExactly) {
  support::Rng rng(86);
  const stats::Pareto pareto(1.3, 1.0);
  const stats::Lognormal lognormal(0.5, 1.5);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 150 + rng.below(4000);
    std::vector<double> xs(n);
    for (auto& x : xs) {
      x = (rng.below(2) == 0) ? pareto.sample(rng) : lognormal.sample(rng);
      // Coarse rounding on some trials forces ties, including at the top.
      if (trial % 3 == 0) x = std::ceil(x * 4.0) / 4.0;
    }
    if (trial % 4 == 0) xs[0] = -1.0;  // non-positive values get filtered
    HillOptions opts;
    opts.max_tail_fraction = (trial % 2 == 0) ? 0.15 : 1.5;  // 1.5 clamps
    const auto plot = hill_plot(xs, opts);
    ASSERT_TRUE(plot.ok()) << "trial=" << trial;
    const auto reference = full_sort_hill_plot(xs, opts);
    ASSERT_EQ(plot.value().k, reference.k) << "trial=" << trial;
    ASSERT_EQ(plot.value().alpha.size(), reference.alpha.size());
    for (std::size_t i = 0; i < reference.alpha.size(); ++i) {
      const double got = plot.value().alpha[i];
      const double want = reference.alpha[i];
      if (std::isnan(want)) {
        ASSERT_TRUE(std::isnan(got)) << "trial=" << trial << " i=" << i;
      } else {
        ASSERT_EQ(got, want) << "trial=" << trial << " i=" << i;  // exact
      }
    }
  }
}

TEST(HillPlot, KRangeRespectsTailFraction) {
  const auto xs = sample_from(stats::Pareto(2.0, 1.0), 10000, 85);
  HillOptions opts;
  opts.max_tail_fraction = 0.14;  // the paper's Figure 12 restriction
  const auto plot = hill_plot(xs, opts);
  ASSERT_TRUE(plot.ok());
  EXPECT_LE(plot.value().k.back(), 1400U);
  EXPECT_GT(plot.value().k.back(), 1350U);
}

}  // namespace
}  // namespace fullweb::tail
