// Property tests: every Hurst estimator must recover a known H from
// synthetic fractional Gaussian noise (the ground-truth LRD process), within
// method-appropriate tolerances; the estimator suite and aggregation sweep
// must behave sensibly on white noise and degenerate inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "lrd/estimator_suite.h"
#include "support/rng.h"
#include "timeseries/fgn.h"

namespace fullweb::lrd {
namespace {

std::vector<double> fgn(std::size_t n, double h, std::uint64_t seed) {
  support::Rng rng(seed);
  auto r = timeseries::generate_fgn(n, h, 1.0, rng);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

/// Average an estimator over a few independent fGn realizations — single
/// realizations of LRD processes have heavy estimator variance by nature.
template <typename Estimate>
double averaged(double h, std::uint64_t seed_base, Estimate&& estimate) {
  double sum = 0.0;
  int used = 0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    const auto xs = fgn(1 << 14, h, seed_base + s * 1000);
    const auto est = estimate(xs);
    if (est.ok()) {
      sum += est.value().h;
      ++used;
    }
  }
  EXPECT_GT(used, 0);
  return used > 0 ? sum / used : 0.0;
}

struct MethodTolerance {
  HurstMethod method;
  double tolerance;
};

class RecoversHurst
    : public ::testing::TestWithParam<std::tuple<double, MethodTolerance>> {};

TEST_P(RecoversHurst, OnFgn) {
  const auto [h, mt] = GetParam();
  const std::uint64_t seed = 7000 + static_cast<std::uint64_t>(h * 1000);

  double estimate = 0.0;
  switch (mt.method) {
    case HurstMethod::kVarianceTime:
      estimate = averaged(h, seed, [](const auto& xs) {
        return variance_time_hurst(xs);
      });
      break;
    case HurstMethod::kRoverS:
      estimate = averaged(h, seed, [](const auto& xs) { return rs_hurst(xs); });
      break;
    case HurstMethod::kPeriodogram:
      estimate = averaged(h, seed, [](const auto& xs) {
        return periodogram_hurst(xs);
      });
      break;
    case HurstMethod::kWhittle:
      estimate = averaged(h, seed, [](const auto& xs) {
        auto r = whittle_hurst(xs);
        return r.ok() ? support::Result<HurstEstimate>(r.value().estimate)
                      : support::Result<HurstEstimate>(r.error());
      });
      break;
    case HurstMethod::kAbryVeitch:
      estimate = averaged(h, seed, [](const auto& xs) {
        auto r = abry_veitch_hurst(xs);
        return r.ok() ? support::Result<HurstEstimate>(r.value().estimate)
                      : support::Result<HurstEstimate>(r.error());
      });
      break;
  }
  EXPECT_NEAR(estimate, h, mt.tolerance)
      << to_string(mt.method) << " at H=" << h;
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsAllH, RecoversHurst,
    ::testing::Combine(
        ::testing::Values(0.55, 0.65, 0.75, 0.85),
        ::testing::Values(MethodTolerance{HurstMethod::kVarianceTime, 0.12},
                          MethodTolerance{HurstMethod::kRoverS, 0.15},
                          MethodTolerance{HurstMethod::kPeriodogram, 0.10},
                          MethodTolerance{HurstMethod::kWhittle, 0.04},
                          MethodTolerance{HurstMethod::kAbryVeitch, 0.06})));

TEST(Whittle, WhiteNoiseGivesHalf) {
  const auto xs = fgn(1 << 14, 0.5, 1);
  const auto r = whittle_hurst(xs);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().estimate.h, 0.5, 0.03);
}

TEST(Whittle, ConfidenceIntervalCoversTruth) {
  int covered = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const auto xs = fgn(1 << 13, 0.8, 100 + t);
    const auto r = whittle_hurst(xs);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().estimate.ci95_halfwidth.has_value());
    if (r.value().estimate.ci_low() <= 0.8 && 0.8 <= r.value().estimate.ci_high())
      ++covered;
  }
  // 95% nominal; allow generous slack for 20 trials.
  EXPECT_GE(covered, 15);
}

TEST(Whittle, DecimationBarelyMovesEstimate) {
  const auto xs = fgn(1 << 15, 0.75, 42);
  WhittleOptions full;
  full.max_frequencies = 0;
  WhittleOptions decimated;
  decimated.max_frequencies = 2048;
  const auto rf = whittle_hurst(xs, full);
  const auto rd = whittle_hurst(xs, decimated);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rd.ok());
  EXPECT_NEAR(rf.value().estimate.h, rd.value().estimate.h, 0.03);
  // Decimation must widen, not shrink, the confidence interval.
  EXPECT_GE(*rd.value().estimate.ci95_halfwidth,
            *rf.value().estimate.ci95_halfwidth);
}

TEST(Whittle, SpectralDensityPositiveAndDecreasing) {
  for (double h : {0.55, 0.7, 0.9}) {
    double prev = fgn_spectral_density(0.01, h);
    EXPECT_GT(prev, 0.0);
    for (double lambda : {0.05, 0.2, 0.8, 2.0, 3.0}) {
      const double f = fgn_spectral_density(lambda, h);
      EXPECT_GT(f, 0.0);
      EXPECT_LT(f, prev) << "lambda=" << lambda << " H=" << h;
      prev = f;
    }
  }
}

TEST(Whittle, TooShortSeriesErrors) {
  const std::vector<double> xs(64, 1.0);
  EXPECT_FALSE(whittle_hurst(xs).ok());
}

TEST(AbryVeitch, TrendDoesNotBiasD4Estimate) {
  // The paper's whole point: trends corrupt Hurst estimates. The D4 wavelet
  // (2 vanishing moments) is inherently blind to linear trends.
  auto xs = fgn(1 << 14, 0.7, 9);
  const auto clean = abry_veitch_hurst(xs);
  for (std::size_t t = 0; t < xs.size(); ++t)
    xs[t] += 3e-4 * static_cast<double>(t);  // drift ~ 5 sigma over window
  const auto trended = abry_veitch_hurst(xs);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(trended.ok());
  EXPECT_NEAR(clean.value().estimate.h, trended.value().estimate.h, 0.02);
}

TEST(AbryVeitch, ReportsUsedOctaves) {
  const auto xs = fgn(1 << 12, 0.6, 10);
  const auto r = abry_veitch_hurst(xs);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().octaves.size(), 3U);
  EXPECT_EQ(r.value().octaves.size(), r.value().log2_energy.size());
}

TEST(AbryVeitch, TooShortErrors) {
  const std::vector<double> xs(32, 1.0);
  EXPECT_FALSE(abry_veitch_hurst(xs).ok());
}

TEST(VarianceTime, ConstantSeriesErrors) {
  const std::vector<double> xs(10000, 2.0);
  EXPECT_FALSE(variance_time_hurst(xs).ok());
}

TEST(VarianceTime, PlotIsMonotoneDecliningForNoise) {
  const auto xs = fgn(1 << 14, 0.5, 11);
  const auto plot = variance_time_plot(xs);
  ASSERT_TRUE(plot.ok());
  EXPECT_GT(plot.value().log10_m.size(), 5U);
  EXPECT_GT(plot.value().log10_var.front(), plot.value().log10_var.back());
}

TEST(Rs, TooShortErrors) {
  const std::vector<double> xs(30, 1.0);
  EXPECT_FALSE(rs_hurst(xs).ok());
}

TEST(Suite, RunsAllFiveOnHealthyInput) {
  const auto xs = fgn(1 << 13, 0.7, 12);
  const auto suite = hurst_suite(xs);
  EXPECT_EQ(suite.estimates.size(), 5U);
  EXPECT_TRUE(suite.all_indicate_lrd());
  EXPECT_NEAR(suite.mean_h(), 0.7, 0.12);
  EXPECT_NE(suite.find(HurstMethod::kWhittle), nullptr);
}

TEST(Suite, WhittleSkippable) {
  const auto xs = fgn(1 << 12, 0.6, 13);
  HurstSuiteOptions opts;
  opts.run_whittle = false;
  const auto suite = hurst_suite(xs, opts);
  EXPECT_EQ(suite.find(HurstMethod::kWhittle), nullptr);
  EXPECT_EQ(suite.estimates.size(), 4U);
}

TEST(Suite, WhiteNoiseDoesNotIndicateLrd) {
  const auto xs = fgn(1 << 13, 0.5, 14);
  const auto suite = hurst_suite(xs);
  // With H ~= 0.5, at least one estimator should fall at or below 0.5.
  EXPECT_FALSE(suite.all_indicate_lrd());
}

TEST(AggregationSweep, HStableAcrossLevelsForFgn) {
  // Figures 7/8: for true (asymptotic) self-similarity, H^(m) stays flat.
  const auto xs = fgn(1 << 16, 0.8, 15);
  const std::vector<std::size_t> levels = {1, 2, 4, 8, 16, 32};
  const auto sweep =
      aggregated_hurst_sweep(xs, HurstMethod::kWhittle, levels);
  ASSERT_GE(sweep.size(), 5U);
  for (const auto& point : sweep) {
    EXPECT_NEAR(point.estimate.h, 0.8, 0.08) << "m=" << point.m;
  }
}

TEST(AggregationSweep, CiWidensWithAggregation) {
  const auto xs = fgn(1 << 16, 0.75, 16);
  const std::vector<std::size_t> levels = {1, 64};
  const auto sweep = aggregated_hurst_sweep(xs, HurstMethod::kWhittle, levels);
  ASSERT_EQ(sweep.size(), 2U);
  ASSERT_TRUE(sweep[0].estimate.ci95_halfwidth.has_value());
  ASSERT_TRUE(sweep[1].estimate.ci95_halfwidth.has_value());
  EXPECT_GT(*sweep[1].estimate.ci95_halfwidth, *sweep[0].estimate.ci95_halfwidth);
}

TEST(AggregationSweep, SkipsLevelsTooDeep) {
  const auto xs = fgn(1 << 10, 0.7, 17);
  const std::vector<std::size_t> levels = {1, 1024, 4096};
  const auto sweep = aggregated_hurst_sweep(xs, HurstMethod::kWhittle, levels);
  EXPECT_EQ(sweep.size(), 1U);  // only m=1 has enough samples
}

TEST(HurstEstimate, CiAccessors) {
  HurstEstimate e;
  e.h = 0.8;
  EXPECT_DOUBLE_EQ(e.ci_low(), 0.8);
  e.ci95_halfwidth = 0.05;
  EXPECT_DOUBLE_EQ(e.ci_low(), 0.75);
  EXPECT_DOUBLE_EQ(e.ci_high(), 0.85);
}

TEST(HurstEstimate, LrdClassification) {
  HurstEstimate e;
  e.h = 0.5;
  EXPECT_FALSE(e.indicates_lrd());
  e.h = 0.75;
  EXPECT_TRUE(e.indicates_lrd());
  e.h = 1.0;
  EXPECT_FALSE(e.indicates_lrd());
}

TEST(MethodNames, AllDistinct) {
  EXPECT_EQ(to_string(HurstMethod::kVarianceTime), "Variance");
  EXPECT_EQ(to_string(HurstMethod::kRoverS), "R/S");
  EXPECT_EQ(to_string(HurstMethod::kPeriodogram), "Periodogram");
  EXPECT_EQ(to_string(HurstMethod::kWhittle), "Whittle");
  EXPECT_EQ(to_string(HurstMethod::kAbryVeitch), "Abry-Veitch");
}

}  // namespace
}  // namespace fullweb::lrd
