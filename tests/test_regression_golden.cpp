// Golden-value regression gate for the cached kernel paths.
//
// The FFT plan cache, the fGn circulant-spectrum cache, and the per-thread
// scratch arenas must be bit-transparent: a cache hit, a cache miss, a
// reused buffer, and any executor width must all produce the same doubles
// to the last bit. These tests pin exact 64-bit patterns (captured on the
// reference build) for fGn draws, a Whittle Hurst estimate, and a bootstrap
// Hill CI, and additionally compare hit-vs-miss and 1-vs-8-thread runs
// directly. If an "optimization" ever changes a bit here, it changed
// results, not just speed.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "lrd/whittle.h"
#include "stats/distributions.h"
#include "support/executor.h"
#include "support/rng.h"
#include "tail/bootstrap.h"
#include "timeseries/fgn.h"

namespace fullweb {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// Captured from the reference implementation of this kernel pass (direct
// cos/sin twiddle tables; see DESIGN.md §5.6).
constexpr std::uint64_t kFgn0 = 0x3fed34f2d75e6ff7ULL;   // 0.91271345199811449
constexpr std::uint64_t kFgn1 = 0x3fed3c49a52fbf4aULL;   // 0.91360933554640522
constexpr std::uint64_t kFgn31 = 0x3fd87e919fb3fcb8ULL;  // 0.38272514911654865
constexpr std::uint64_t kFgn63 = 0xbfba6d9737241640ULL;  // -0.10323472114767984
constexpr std::uint64_t kWhittleH = 0x3fe9b20b6eca457cULL;    // 0.80298396719642500
constexpr std::uint64_t kCiEstimate = 0x3ff67221eea3b287ULL;  // 1.4028643915036427
constexpr std::uint64_t kCiLo = 0x3ff3ab2fa05ef95dULL;        // 1.2292934669963735
constexpr std::uint64_t kCiHi = 0x3ff97192bdfe1a63ULL;        // 1.5902278348527481

std::vector<double> draw_fgn(std::size_t n, double h, std::uint64_t seed) {
  support::Rng rng(seed);
  auto r = timeseries::generate_fgn(n, h, 1.0, rng);
  EXPECT_TRUE(r.ok());
  return r.ok() ? r.value() : std::vector<double>{};
}

TEST(GoldenFgn, DrawsMatchReferenceBits) {
  const auto xs = draw_fgn(64, 0.8, 123);
  ASSERT_EQ(xs.size(), 64U);
  EXPECT_EQ(bits(xs[0]), kFgn0);
  EXPECT_EQ(bits(xs[1]), kFgn1);
  EXPECT_EQ(bits(xs[31]), kFgn31);
  EXPECT_EQ(bits(xs[63]), kFgn63);
}

TEST(GoldenFgn, SpectrumCacheHitIsBitIdenticalToMiss) {
  // The first draw at a fresh (n, H) builds the circulant spectrum; the
  // second hits the cache. Interleave another configuration to force real
  // cache traffic, then re-draw with the same seed: every bit must match.
  const auto miss = draw_fgn(512, 0.72, 99);
  const auto other = draw_fgn(256, 0.6, 7);
  ASSERT_EQ(other.size(), 256U);
  const auto hit = draw_fgn(512, 0.72, 99);
  ASSERT_EQ(miss.size(), hit.size());
  for (std::size_t i = 0; i < miss.size(); ++i)
    ASSERT_EQ(bits(miss[i]), bits(hit[i])) << "i=" << i;
}

TEST(GoldenWhittle, EstimateMatchesReferenceBits) {
  support::Rng rng(42);
  auto series = timeseries::generate_fgn(4096, 0.8, 1.0, rng);
  ASSERT_TRUE(series.ok());
  auto wh = lrd::whittle_hurst(series.value());
  ASSERT_TRUE(wh.ok());
  EXPECT_EQ(bits(wh.value().estimate.h), kWhittleH);
}

class GoldenBootstrap : public ::testing::Test {
 protected:
  tail::BootstrapCi run(std::size_t threads) {
    const stats::Pareto dist(1.4, 1.0);
    support::Rng sample_rng(77);
    std::vector<double> xs(2000);
    for (auto& x : xs) x = dist.sample(sample_rng);
    support::Executor ex(threads);
    tail::BootstrapOptions opts;
    opts.replicates = 50;
    opts.executor = &ex;
    support::Rng rng(5);
    auto ci = tail::bootstrap_hill_ci(xs, rng, opts);
    EXPECT_TRUE(ci.ok());
    return ci.ok() ? ci.value() : tail::BootstrapCi{};
  }
};

TEST_F(GoldenBootstrap, SerialMatchesReferenceBits) {
  const auto ci = run(1);
  EXPECT_EQ(bits(ci.estimate), kCiEstimate);
  EXPECT_EQ(bits(ci.lo), kCiLo);
  EXPECT_EQ(bits(ci.hi), kCiHi);
  EXPECT_EQ(ci.replicates_used, 49U);
}

TEST_F(GoldenBootstrap, EightThreadsBitIdenticalToSerial) {
  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_EQ(bits(serial.estimate), bits(parallel.estimate));
  EXPECT_EQ(bits(serial.lo), bits(parallel.lo));
  EXPECT_EQ(bits(serial.hi), bits(parallel.hi));
  EXPECT_EQ(serial.replicates_used, parallel.replicates_used);
}

}  // namespace
}  // namespace fullweb
