// Tests for counting series, aggregation, detrending, and seasonal removal.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "stats/descriptive.h"
#include "support/rng.h"
#include "timeseries/detrend.h"
#include "timeseries/seasonal.h"
#include "timeseries/series.h"

namespace fullweb::timeseries {
namespace {

TEST(CountsPerBin, BasicBinning) {
  const std::vector<double> events = {0.1, 0.9, 1.5, 3.2, 3.9};
  const auto counts = counts_per_bin(events, 0.0, 4.0, 1.0);
  ASSERT_EQ(counts.size(), 4U);
  EXPECT_DOUBLE_EQ(counts[0], 2.0);
  EXPECT_DOUBLE_EQ(counts[1], 1.0);
  EXPECT_DOUBLE_EQ(counts[2], 0.0);
  EXPECT_DOUBLE_EQ(counts[3], 2.0);
}

TEST(CountsPerBin, EventsOutsideWindowIgnored) {
  const std::vector<double> events = {-1.0, 0.5, 4.0, 10.0};
  const auto counts = counts_per_bin(events, 0.0, 4.0, 1.0);
  double total = 0;
  for (double c : counts) total += c;
  EXPECT_DOUBLE_EQ(total, 1.0);  // only 0.5 falls in [0, 4)
}

TEST(CountsPerBin, WiderBins) {
  const std::vector<double> events = {0, 1, 2, 3, 4, 5};
  const auto counts = counts_per_bin(events, 0.0, 6.0, 2.0);
  ASSERT_EQ(counts.size(), 3U);
  for (double c : counts) EXPECT_DOUBLE_EQ(c, 2.0);
}

TEST(CountsPerBin, PartialLastBin) {
  const auto counts = counts_per_bin(std::vector<double>{}, 0.0, 5.0, 2.0);
  EXPECT_EQ(counts.size(), 3U);  // ceil(5/2)
}

TEST(Aggregate, PaperEquationOne) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7};
  const auto agg = aggregate(xs, 3);
  ASSERT_EQ(agg.size(), 2U);  // trailing partial block dropped
  EXPECT_DOUBLE_EQ(agg[0], 2.0);
  EXPECT_DOUBLE_EQ(agg[1], 5.0);
}

TEST(Aggregate, LevelOneIsIdentity) {
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_EQ(aggregate(xs, 1), xs);
}

TEST(Aggregate, PreservesMeanOfCoveredBlocks) {
  support::Rng rng(1);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = rng.uniform();
  const auto agg = aggregate(xs, 10);
  EXPECT_NEAR(stats::mean(agg), stats::mean(xs), 1e-12);
}

TEST(Aggregate, WhiteNoiseVarianceScalesAsOneOverM) {
  support::Rng rng(2);
  std::vector<double> xs(200000);
  for (auto& x : xs) x = rng.normal();
  const std::vector<std::size_t> levels = {1, 4, 16, 64};
  const auto vars = aggregated_variances(xs, levels);
  // Var(X^(m)) = Var(X)/m for iid: ratios ~ 4.
  EXPECT_NEAR(vars[0] / vars[1], 4.0, 0.5);
  EXPECT_NEAR(vars[1] / vars[2], 4.0, 0.7);
}

TEST(LogSpacedLevels, CoversRangeWithoutDuplicates) {
  const auto levels = log_spaced_levels(100000, 10, 50);
  ASSERT_GE(levels.size(), 5U);
  EXPECT_EQ(levels.front(), 1U);
  EXPECT_LE(levels.back(), 100000U / 50U);
  for (std::size_t i = 1; i < levels.size(); ++i)
    EXPECT_GT(levels[i], levels[i - 1]);
}

TEST(LogSpacedLevels, ShortSeriesGetsOnlyLevelOne) {
  const auto levels = log_spaced_levels(60, 10, 50);
  ASSERT_EQ(levels.size(), 1U);
  EXPECT_EQ(levels[0], 1U);
}

// ----------------------------------------------------------------- detrend

TEST(Detrend, RemovesExactLinearTrend) {
  std::vector<double> xs(1000);
  for (std::size_t t = 0; t < xs.size(); ++t)
    xs[t] = 5.0 + 0.02 * static_cast<double>(t);
  const auto fit = detrend_linear(xs);
  EXPECT_NEAR(fit.fit.slope, 0.02, 1e-12);
  // Residual should be flat at the mean level.
  const double m = stats::mean(xs);
  for (double r : fit.residual) EXPECT_NEAR(r, m, 1e-9);
}

TEST(Detrend, KeepMeanFalseCentersAtZero) {
  std::vector<double> xs(100);
  for (std::size_t t = 0; t < xs.size(); ++t)
    xs[t] = 3.0 + 0.1 * static_cast<double>(t);
  const auto fit = detrend_linear(xs, /*keep_mean=*/false);
  for (double r : fit.residual) EXPECT_NEAR(r, 0.0, 1e-9);
}

TEST(Detrend, RelativeDriftMeasuresEffectSize) {
  std::vector<double> xs(1001);
  for (std::size_t t = 0; t < xs.size(); ++t)
    xs[t] = 100.0 + 0.01 * static_cast<double>(t);  // +10 over window, mean 105
  const auto fit = detrend_linear(xs);
  EXPECT_NEAR(fit.relative_drift, 10.0 / 105.0, 1e-6);
}

TEST(Detrend, NoiseOnlySlopeNearZero) {
  support::Rng rng(3);
  std::vector<double> xs(10000);
  for (auto& x : xs) x = rng.normal();
  const auto fit = detrend_linear(xs);
  EXPECT_NEAR(fit.fit.slope, 0.0, 3.0 * fit.fit.stderr_slope + 1e-6);
}

// ---------------------------------------------------------------- seasonal

std::vector<double> daily_series(std::size_t days, std::size_t day_len,
                                 double amplitude, double noise,
                                 std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs(days * day_len);
  for (std::size_t t = 0; t < xs.size(); ++t) {
    xs[t] = 10.0 +
            amplitude * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                                 static_cast<double>(day_len)) +
            noise * rng.normal();
  }
  return xs;
}

TEST(DetectPeriod, FindsPlantedPeriod) {
  const auto xs = daily_series(7, 1440, 4.0, 1.0, 4);
  const auto period = detect_period(xs, 100, 3000);
  ASSERT_TRUE(period.ok());
  EXPECT_NEAR(static_cast<double>(period.value()), 1440.0, 40.0);
}

TEST(DetectPeriod, ErrorsWhenSeriesTooShort) {
  const auto xs = daily_series(1, 1440, 4.0, 1.0, 5);
  EXPECT_FALSE(detect_period(xs, 100, 3000).ok());
}

TEST(DetectPeriod, RejectsBadBounds) {
  const auto xs = daily_series(7, 100, 4.0, 1.0, 6);
  EXPECT_FALSE(detect_period(xs, 0, 10).ok());
  EXPECT_FALSE(detect_period(xs, 50, 10).ok());
}

TEST(SeasonalDifference, RemovesExactPeriodicity) {
  std::vector<double> xs(1000);
  for (std::size_t t = 0; t < xs.size(); ++t)
    xs[t] = std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 100.0);
  const auto diff = seasonal_difference(xs, 100);
  ASSERT_EQ(diff.size(), 900U);
  for (double d : diff) EXPECT_NEAR(d, 0.0, 1e-12);
}

TEST(SeasonalDifference, OutputLength) {
  const std::vector<double> xs(50, 1.0);
  EXPECT_EQ(seasonal_difference(xs, 7).size(), 43U);
}

TEST(RemoveSeasonalMeans, PreservesLengthAndGrandMean) {
  const auto xs = daily_series(5, 200, 3.0, 0.5, 7);
  const auto out = remove_seasonal_means(xs, 200);
  ASSERT_EQ(out.size(), xs.size());
  EXPECT_NEAR(stats::mean(out), stats::mean(xs), 1e-9);
  // Periodic component should be gone: per-phase means all equal grand mean.
  const auto strength_before = seasonal_strength(xs, 200);
  const auto strength_after = seasonal_strength(out, 200);
  EXPECT_LT(strength_after, 0.1 * strength_before);
}

TEST(SeasonalStrength, StrongerSignalHigherShare) {
  const auto weak = daily_series(7, 500, 0.5, 1.0, 8);
  const auto strong = daily_series(7, 500, 5.0, 1.0, 8);
  EXPECT_GT(seasonal_strength(strong, 500), seasonal_strength(weak, 500));
}

}  // namespace
}  // namespace fullweb::timeseries
