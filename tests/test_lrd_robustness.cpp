// Robustness / misspecification tests for the Hurst estimators — the
// paper's methodological warning (§3.1, after Karagiannis et al. [13]):
// estimators "can hide long-range dependence or report it erroneously".
// These tests document how our implementations behave under the classic
// contaminations: short-memory AR(1) data, outlier spikes, missing
// observations, and level shifts.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lrd/estimator_suite.h"
#include "support/rng.h"
#include "timeseries/fgn.h"

namespace fullweb::lrd {
namespace {

std::vector<double> fgn(std::size_t n, double h, std::uint64_t seed) {
  support::Rng rng(seed);
  auto r = timeseries::generate_fgn(n, h, 1.0, rng);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

std::vector<double> ar1(std::size_t n, double phi, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs(n);
  xs[0] = rng.normal();
  for (std::size_t t = 1; t < n; ++t) xs[t] = phi * xs[t - 1] + rng.normal();
  return xs;
}

TEST(Robustness, Ar1ShortMemoryIsNotStrongLrd) {
  // AR(1) with phi = 0.3 is short-range dependent; the frequency-domain
  // estimators must not report strong long memory for it (a control for
  // the "now you see it" false-positive failure mode).
  const auto xs = ar1(1 << 14, 0.3, 1);
  const auto whittle = whittle_hurst(xs);
  const auto av = abry_veitch_hurst(xs);
  ASSERT_TRUE(whittle.ok());
  ASSERT_TRUE(av.ok());
  EXPECT_LT(whittle.value().estimate.h, 0.72);
  EXPECT_LT(av.value().estimate.h, 0.72);
}

TEST(Robustness, StrongAr1FoolsFiniteSampleEstimators) {
  // ... whereas phi = 0.9 (still short memory!) drives finite-sample
  // estimates well above 0.5 — the documented pitfall. The discriminator
  // is aggregation: H^(m) of AR(1) FALLS with m, fGn's stays flat.
  const auto short_mem = ar1(1 << 16, 0.9, 2);
  const std::vector<std::size_t> levels = {1, 64};
  const auto sweep_ar = aggregated_hurst_sweep(short_mem, HurstMethod::kWhittle, levels);
  ASSERT_EQ(sweep_ar.size(), 2U);
  EXPECT_GT(sweep_ar[0].estimate.h, 0.7);  // fooled at m = 1
  EXPECT_LT(sweep_ar[1].estimate.h,
            sweep_ar[0].estimate.h - 0.1);  // exposed by aggregation

  const auto long_mem = fgn(1 << 16, 0.8, 3);
  const auto sweep_fgn = aggregated_hurst_sweep(long_mem, HurstMethod::kWhittle, levels);
  ASSERT_EQ(sweep_fgn.size(), 2U);
  EXPECT_NEAR(sweep_fgn[1].estimate.h, sweep_fgn[0].estimate.h, 0.1);
}

TEST(Robustness, OutlierSpikesBarelyMoveWaveletAndWhittle) {
  auto xs = fgn(1 << 14, 0.75, 4);
  const auto clean_w = whittle_hurst(xs);
  const auto clean_av = abry_veitch_hurst(xs);
  ASSERT_TRUE(clean_w.ok());
  ASSERT_TRUE(clean_av.ok());

  support::Rng rng(5);
  for (int i = 0; i < 10; ++i)
    xs[rng.below(xs.size())] += 25.0;  // 25-sigma spikes

  const auto dirty_w = whittle_hurst(xs);
  const auto dirty_av = abry_veitch_hurst(xs);
  ASSERT_TRUE(dirty_w.ok());
  ASSERT_TRUE(dirty_av.ok());
  EXPECT_NEAR(dirty_w.value().estimate.h, clean_w.value().estimate.h, 0.15);
  EXPECT_NEAR(dirty_av.value().estimate.h, clean_av.value().estimate.h, 0.15);
}

TEST(Robustness, ZeroFilledGapsBiasHurstTowardWhiteNoise) {
  // Documented sensitivity, not robustness: zero-filling 5% of a
  // counts-like series (logging outages) injects large white-noise spikes
  // relative to the level, so Whittle's whole-spectrum fit slides toward
  // H = 0.5. Operators should EXCISE outage windows, not zero-fill them —
  // this test pins the failure mode that motivates that advice.
  auto xs = fgn(1 << 14, 0.8, 6);
  for (auto& x : xs) x += 10.0;  // counts-like positive level
  const auto clean = whittle_hurst(xs);
  ASSERT_TRUE(clean.ok());

  support::Rng rng(7);
  for (std::size_t i = 0; i < xs.size() / 20; ++i) xs[rng.below(xs.size())] = 0.0;
  const auto gappy = whittle_hurst(xs);
  ASSERT_TRUE(gappy.ok());
  EXPECT_LT(gappy.value().estimate.h, clean.value().estimate.h - 0.05);
  EXPECT_GT(gappy.value().estimate.h, 0.5);  // LRD not fully erased
}

TEST(Robustness, LevelShiftInflatesTimeDomainEstimators) {
  // A mid-series mean shift (e.g. a content change on the server) is pure
  // non-stationarity; the time-domain estimators absorb it as spurious
  // long memory — exactly why the paper KPSS-tests first.
  auto xs = fgn(1 << 14, 0.55, 8);
  const auto clean = variance_time_hurst(xs);
  ASSERT_TRUE(clean.ok());
  for (std::size_t t = xs.size() / 2; t < xs.size(); ++t) xs[t] += 3.0;
  const auto shifted = variance_time_hurst(xs);
  ASSERT_TRUE(shifted.ok());
  EXPECT_GT(shifted.value().h, clean.value().h + 0.15);
}

TEST(Robustness, PeriodicContaminationInflatesEstimatesUntilRemoved) {
  // The paper's core claim as a property test: adding a sinusoid inflates
  // the suite's mean H; seasonal differencing restores it.
  const std::size_t period = 256;
  auto xs = fgn(1 << 14, 0.65, 9);
  const double clean_mean = hurst_suite(xs).mean_h();

  for (std::size_t t = 0; t < xs.size(); ++t)
    xs[t] += 2.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                            static_cast<double>(period));
  const double dirty_mean = hurst_suite(xs).mean_h();
  EXPECT_GT(dirty_mean, clean_mean + 0.03);

  std::vector<double> diffed(xs.size() - period);
  for (std::size_t t = period; t < xs.size(); ++t)
    diffed[t - period] = xs[t] - xs[t - period];
  const double fixed_mean = hurst_suite(diffed).mean_h();
  EXPECT_LT(fixed_mean, dirty_mean);
  EXPECT_NEAR(fixed_mean, clean_mean, 0.12);
}

}  // namespace
}  // namespace fullweb::lrd
