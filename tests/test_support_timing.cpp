// Tests for the StageTimings span tree (support/timing.h): nesting via the
// per-thread open-stage stack, the Kind/width span model behind the Amdahl
// scaling estimates, thread-id assignment, and the JSON dump the scaling
// bench ships to bench_compare.
//
// Durations come from the wall clock, so tests never assert exact seconds —
// they assert the *structure* (parents, kinds, widths, ordering) and the
// span-model identities that hold for any positive durations.
#include "support/timing.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>

#include "support/json.h"

namespace fullweb::support {
namespace {

using Kind = StageTimings::Kind;

TEST(StageTimings, EmptySinkIsSerial) {
  StageTimings t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.entries().size(), 0u);
  EXPECT_DOUBLE_EQ(t.work_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(t.span_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(t.serial_fraction(), 1.0);  // no data = assume serial
  EXPECT_DOUBLE_EQ(t.modeled_speedup(8), 1.0);
}

TEST(StageTimings, NullSinkTimerIsANoop) {
  StageTimer t(nullptr, "nothing");
  EXPECT_GE(t.stop(), 0.0);
}

TEST(StageTimings, BeginEndNestsOnTheSameThread) {
  StageTimings t;
  const std::size_t outer = t.begin("outer", Kind::kPhase);
  const std::size_t inner = t.begin("inner");
  t.end(inner);
  t.end(outer);
  const std::size_t sibling = t.begin("sibling");
  t.end(sibling);

  const auto entries = t.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[outer].stage, "outer");
  EXPECT_EQ(entries[outer].parent, -1);
  EXPECT_EQ(entries[inner].parent, static_cast<int>(outer));
  EXPECT_EQ(entries[sibling].parent, -1);  // outer closed before it began
  for (const auto& e : entries) {
    EXPECT_GE(e.seconds, 0.0);
    EXPECT_GE(e.start, 0.0);
    EXPECT_EQ(e.thread, 0);  // single thread = dense id 0
  }
}

TEST(StageTimings, RecordParentsUnderTheOpenStage) {
  StageTimings t;
  const std::size_t outer = t.begin("outer", Kind::kPhase);
  t.record("leaf", 0.25);
  t.end(outer);
  t.record("root leaf", 0.5);

  const auto entries = t.entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[1].stage, "leaf");
  EXPECT_EQ(entries[1].parent, static_cast<int>(outer));
  EXPECT_DOUBLE_EQ(entries[1].seconds, 0.25);
  EXPECT_EQ(entries[2].parent, -1);
  EXPECT_DOUBLE_EQ(t.total_seconds(),
                   entries[0].seconds + 0.25 + 0.5);
}

TEST(StageTimings, ThreadsGetDenseIdsAndRootParents) {
  StageTimings t;
  const std::size_t main_stage = t.begin("main");
  std::thread other([&] {
    // A different thread has no open frame here: the stage must become a
    // root (this is the stolen-task behaviour documented in the header).
    const std::size_t s = t.begin("worker");
    t.end(s);
  });
  other.join();
  t.end(main_stage);

  const auto entries = t.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].thread, 0);
  EXPECT_EQ(entries[1].thread, 1);  // dense, in first-seen order
  EXPECT_EQ(entries[1].parent, -1);
}

// The span model on synthetic durations: two concurrent kTask siblings
// under a kPhase root, plus a sequential kPhase sibling.
//
//   root(phase)            span = max(a, b) + c,  work = a + b + c
//     a (task, 0.4)
//     b (task, 0.1)
//     c (phase, 0.2)
TEST(StageTimings, TaskSiblingsMaxPhaseSiblingsAdd) {
  StageTimings t;
  const std::size_t root = t.begin("root", Kind::kPhase);
  t.record("a", 0.4);
  t.record("b", 0.1);
  const std::size_t c = t.begin("c", Kind::kPhase);
  t.end(c);
  t.end(root);

  // record() leaves default Kind::kTask; patching c's duration is not
  // possible through the public API, so fold its (tiny) measured time into
  // the expectations instead of asserting exact equality. The injected
  // 0.5 s of child time dwarfs the root's real wall-clock, so the root's
  // self time clamps at zero rather than going negative.
  const auto entries = t.entries();
  const double c_self = entries[c].seconds;
  const double root_self =
      std::max(0.0, entries[root].seconds - (0.4 + 0.1 + c_self));
  const double work = t.work_seconds();
  const double span = t.span_seconds();
  EXPECT_NEAR(work, root_self + 0.4 + 0.1 + c_self, 1e-9);
  EXPECT_NEAR(span, root_self + std::max(0.4, 0.1) + c_self, 1e-9);
  EXPECT_NEAR(t.serial_fraction(), span / work, 1e-12);

  const double s = t.serial_fraction();
  EXPECT_NEAR(t.modeled_speedup(4), 1.0 / (s + (1.0 - s) / 4.0), 1e-12);
  EXPECT_DOUBLE_EQ(t.modeled_speedup(1), 1.0);
}

TEST(StageTimings, WidthDividesSelfTimeOnTheSpanPath) {
  // A lone stage declaring width w models a parallel_for over w units: its
  // span contribution is self/w while its work contribution stays self.
  StageTimings narrow;
  {
    StageTimer timer(&narrow, "mc", Kind::kTask, 1.0);
    volatile double sink = 0.0;
    for (int i = 0; i < 200000; ++i) sink = sink + 1.0;
  }
  const double w1 = narrow.work_seconds();
  ASSERT_GT(w1, 0.0);
  EXPECT_NEAR(narrow.span_seconds(), w1, 1e-12);

  StageTimings wide;
  {
    StageTimer timer(&wide, "mc", Kind::kTask, 100.0);
    volatile double sink = 0.0;
    for (int i = 0; i < 200000; ++i) sink = sink + 1.0;
  }
  const auto entries = wide.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_DOUBLE_EQ(entries[0].width, 100.0);
  EXPECT_NEAR(wide.span_seconds(), wide.work_seconds() / 100.0,
              wide.work_seconds() * 1e-9);
  EXPECT_LE(wide.serial_fraction(), 0.011);
  EXPECT_GT(wide.modeled_speedup(8), 7.0);
}

TEST(StageTimings, TableIndentsChildren) {
  StageTimings t;
  const std::size_t outer = t.begin("outer", Kind::kPhase);
  t.record("child", 0.1);
  t.end(outer);
  const std::string table = t.table();
  EXPECT_NE(table.find("outer"), std::string::npos);
  EXPECT_NE(table.find("  child"), std::string::npos);
}

TEST(StageTimings, ToJsonRoundTripsTheTree) {
  StageTimings t;
  const std::size_t outer = t.begin("outer", Kind::kPhase, 2.0);
  t.record("child", 0.125);
  t.end(outer);

  const auto doc = json_parse(t.to_json());
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->find("work_seconds")->number().has_value());
  EXPECT_TRUE(doc->find("span_seconds")->number().has_value());
  EXPECT_TRUE(doc->find("serial_fraction")->number().has_value());

  const JsonArray* stages = doc->find("stages")->array();
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->size(), 2u);
  const JsonValue& o = (*stages)[0];
  EXPECT_EQ(o.find("stage")->string().value_or(""), "outer");
  EXPECT_EQ(o.find("kind")->string().value_or(""), "phase");
  EXPECT_DOUBLE_EQ(o.find("width")->number().value_or(0.0), 2.0);
  EXPECT_DOUBLE_EQ(o.find("parent")->number().value_or(0.0), -1.0);
  const JsonValue& c = (*stages)[1];
  EXPECT_EQ(c.find("stage")->string().value_or(""), "child");
  EXPECT_EQ(c.find("kind")->string().value_or(""), "task");
  EXPECT_DOUBLE_EQ(c.find("seconds")->number().value_or(0.0), 0.125);
  EXPECT_DOUBLE_EQ(c.find("parent")->number().value_or(-2.0), 0.0);
}

TEST(StageTimer, StopReturnsElapsedAndDetaches) {
  StageTimings t;
  StageTimer timer(&t, "once");
  const double first = timer.stop();
  EXPECT_GE(first, 0.0);
  // After stop() the destructor must not record a second entry.
  {
    StageTimer inner(&t, "twice");
    inner.stop();
  }
  EXPECT_EQ(t.entries().size(), 2u);
}

}  // namespace
}  // namespace fullweb::support
