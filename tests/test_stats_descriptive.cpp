#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <vector>

namespace fullweb::stats {
namespace {

TEST(Mean, HandComputed) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Variance, SampleVsPopulation) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(variance_population(xs), 4.0);
  EXPECT_NEAR(variance(xs), 4.0 * 8.0 / 7.0, 1e-12);
}

TEST(Variance, DegenerateInputs) {
  const std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(variance_population(one), 0.0);
  const std::vector<double> constant = {3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(variance(constant), 0.0);
}

TEST(Variance, StableOnLargeOffset) {
  // Two-pass algorithm should not lose precision with a large mean.
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(1e9 + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(variance_population(xs), 1.0, 1e-6);
}

TEST(MinMax, Basic) {
  const std::vector<double> xs = {3, -1, 7, 0};
  EXPECT_DOUBLE_EQ(min_value(xs), -1);
  EXPECT_DOUBLE_EQ(max_value(xs), 7);
}

TEST(Quantile, MatchesRType7) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.1), 1.4);  // R: quantile(1:5, .1) = 1.4
}

TEST(Quantile, UnsortedInput) {
  const std::vector<double> xs = {5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.5), 3.0);
}

TEST(Summarize, FiveNumbers) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 9U);
  EXPECT_DOUBLE_EQ(s.median, 5.0);
  EXPECT_DOUBLE_EQ(s.q25, 3.0);
  EXPECT_DOUBLE_EQ(s.q75, 7.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
}

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0U);
}

TEST(Ecdf, StrictlyIncreasingToOne) {
  const std::vector<double> xs = {3, 1, 2, 2, 5};
  const Ecdf e = ecdf(xs);
  ASSERT_EQ(e.x.size(), 4U);  // distinct values 1,2,3,5
  EXPECT_DOUBLE_EQ(e.x[0], 1.0);
  EXPECT_DOUBLE_EQ(e.f[0], 0.2);
  EXPECT_DOUBLE_EQ(e.x[1], 2.0);
  EXPECT_DOUBLE_EQ(e.f[1], 0.6);  // ties collapse to the last occurrence
  EXPECT_DOUBLE_EQ(e.f.back(), 1.0);
  for (std::size_t i = 1; i < e.f.size(); ++i) EXPECT_GT(e.f[i], e.f[i - 1]);
}

TEST(Ecdf, CcdfComplements) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const Ecdf e = ecdf(xs);
  const auto c = e.ccdf();
  ASSERT_EQ(c.size(), e.f.size());
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_DOUBLE_EQ(c[i], 1.0 - e.f[i]);
  EXPECT_DOUBLE_EQ(c.back(), 0.0);
}

TEST(Ecdf, EmptyInput) {
  const Ecdf e = ecdf({});
  EXPECT_TRUE(e.x.empty());
}

}  // namespace
}  // namespace fullweb::stats
