// LruCache + Workspace: the shared machinery under the kernel caches.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/lru_cache.h"
#include "support/workspace.h"

namespace fullweb::support {
namespace {

TEST(LruCache, BuildsOncePerKeyAndCachesIt) {
  LruCache<int, int> cache(4);
  int builds = 0;
  auto factory = [&](int k) {
    return [&builds, k] {
      ++builds;
      return std::make_shared<const int>(k * 10);
    };
  };
  EXPECT_EQ(*cache.get_or_create(1, factory(1)), 10);
  EXPECT_EQ(*cache.get_or_create(1, factory(1)), 10);
  EXPECT_EQ(*cache.get_or_create(2, factory(2)), 20);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.size(), 2U);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  int builds = 0;
  auto factory = [&](int k) {
    return [&builds, k] {
      ++builds;
      return std::make_shared<const int>(k);
    };
  };
  cache.get_or_create(1, factory(1));
  cache.get_or_create(2, factory(2));
  cache.get_or_create(1, factory(1));  // touch 1: now 2 is the LRU entry
  cache.get_or_create(3, factory(3));  // evicts 2
  EXPECT_EQ(cache.size(), 2U);
  EXPECT_EQ(builds, 3);
  cache.get_or_create(1, factory(1));  // still cached
  EXPECT_EQ(builds, 3);
  cache.get_or_create(2, factory(2));  // was evicted: rebuilt
  EXPECT_EQ(builds, 4);
}

TEST(LruCache, EvictedValueStaysAliveWhileHeld) {
  LruCache<int, std::vector<int>> cache(1);
  auto held = cache.get_or_create(
      1, [] { return std::make_shared<const std::vector<int>>(3, 7); });
  cache.get_or_create(
      2, [] { return std::make_shared<const std::vector<int>>(1, 9); });
  EXPECT_EQ(cache.size(), 1U);       // entry 1 evicted from the cache...
  EXPECT_EQ(held->at(2), 7);         // ...but the shared value survives
}

TEST(LruCache, ConcurrentGetOrCreateYieldsOneCanonicalValue) {
  LruCache<int, int> cache(4);
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<std::shared_ptr<const int>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {}
      seen[t] = cache.get_or_create(
          42, [] { return std::make_shared<const int>(420); });
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(seen[t], nullptr);
    EXPECT_EQ(*seen[t], 420);
    EXPECT_EQ(seen[t].get(), seen[0].get());  // all share one object
  }
}

TEST(Workspace, SlotsAreIndependentAndStable) {
  Workspace& arena = Workspace::for_thread();
  auto& a = arena.real(0);
  auto& b = arena.real(1);
  a.assign(100, 1.0);
  b.assign(5, 2.0);
  a.resize(1000, 3.0);  // growing one slot must not disturb another
  EXPECT_EQ(b.size(), 5U);
  EXPECT_EQ(b[4], 2.0);
  EXPECT_EQ(&arena.real(0), &a);  // same thread, same buffer
}

TEST(Workspace, EachThreadGetsItsOwnArena) {
  Workspace::for_thread().real(0).assign(10, 1.0);
  Workspace* other = nullptr;
  std::thread t([&] {
    other = &Workspace::for_thread();
    EXPECT_TRUE(other->real(0).empty());  // fresh arena, not this thread's
  });
  t.join();
  EXPECT_NE(other, &Workspace::for_thread());
  EXPECT_EQ(Workspace::for_thread().real(0).size(), 10U);
}

}  // namespace
}  // namespace fullweb::support
