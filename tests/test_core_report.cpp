// Tests for the text and Markdown report renderers.
#include <gtest/gtest.h>

#include "core/error_analysis.h"
#include "core/fullweb_model.h"
#include "core/interarrival.h"
#include "core/report_markdown.h"
#include "stats/distributions.h"
#include "support/rng.h"
#include "synth/generator.h"

namespace fullweb::core {
namespace {

FullWebModel small_model() {
  support::Rng rng(1);
  synth::GeneratorOptions gen;
  gen.duration = 86400.0;
  gen.scale = 0.5;
  auto ds = synth::generate_dataset(synth::ServerProfile::csee(), gen, rng);
  EXPECT_TRUE(ds.ok());
  FullWebOptions opts;
  opts.tails.run_curvature = false;
  opts.arrivals.aggregation_levels = {1, 10};
  auto model = fit_fullweb_model(ds.value(), rng, opts);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(MarkdownReport, ContainsAllSections) {
  const auto model = small_model();
  const std::string md = render_markdown(model);
  EXPECT_NE(md.find("# FULL-Web workload model — CSEE"), std::string::npos);
  EXPECT_NE(md.find("## Request arrival process"), std::string::npos);
  EXPECT_NE(md.find("## Session arrival process"), std::string::npos);
  EXPECT_NE(md.find("Poisson tests — requests"), std::string::npos);
  EXPECT_NE(md.find("## Intra-session heavy-tail analysis"), std::string::npos);
  EXPECT_NE(md.find("| Week |"), std::string::npos);
  // All five estimators appear in the Hurst table.
  for (const char* name :
       {"Variance", "R/S", "Periodogram", "Whittle", "Abry-Veitch"}) {
    EXPECT_NE(md.find(name), std::string::npos) << name;
  }
}

TEST(MarkdownReport, SweepAndDetailTogglable) {
  const auto model = small_model();
  MarkdownReportOptions opts;
  opts.include_aggregation_sweeps = false;
  opts.include_poisson_detail = false;
  const std::string md = render_markdown(model, opts);
  EXPECT_EQ(md.find("Aggregated-series estimates"), std::string::npos);
  EXPECT_EQ(md.find("<details>"), std::string::npos);
  const std::string full = render_markdown(model);
  EXPECT_NE(full.find("Aggregated-series estimates"), std::string::npos);
  EXPECT_NE(full.find("<details>"), std::string::npos);
}

TEST(MarkdownReport, CiShownForWhittle) {
  const auto model = small_model();
  const std::string md = render_markdown(model);
  EXPECT_NE(md.find("±"), std::string::npos);
}

TEST(MarkdownReport, ErrorSectionRenders) {
  ErrorAnalysis e;
  e.statuses.by_class[2] = 90;
  e.statuses.by_class[4] = 10;
  e.request_error_rate = 0.1;
  e.sessions = 20;
  e.sessions_with_error = 5;
  e.session_reliability = 0.75;
  e.errors_per_bad_session = 2.0;
  const std::string md = render_markdown_errors(e);
  EXPECT_NE(md.find("## Error & reliability analysis"), std::string::npos);
  EXPECT_NE(md.find("| 4xx | 10 |"), std::string::npos);
  EXPECT_NE(md.find("75%"), std::string::npos);
}

TEST(MarkdownReport, InterarrivalSectionRenders) {
  support::Rng rng(2);
  const stats::Pareto p(1.4, 0.5);
  std::vector<double> gaps(2000);
  for (auto& g : gaps) g = p.sample(rng);
  const auto ia = analyze_interarrivals(gaps, true);
  ASSERT_TRUE(ia.ok());
  const std::string md = render_markdown_interarrivals(ia.value());
  EXPECT_NE(md.find("## Request inter-arrival model ranking"), std::string::npos);
  EXPECT_NE(md.find("Pareto"), std::string::npos);
  EXPECT_NE(md.find("exponential adequate: **no**"), std::string::npos);
}

TEST(TextReport, MentionsVerdictsAndTables) {
  const auto model = small_model();
  const std::string text = render_report(model);
  EXPECT_NE(text.find("FULL-Web model: CSEE"), std::string::npos);
  EXPECT_NE(text.find("Poisson"), std::string::npos);
  EXPECT_NE(text.find("Week"), std::string::npos);
}

}  // namespace
}  // namespace fullweb::core
