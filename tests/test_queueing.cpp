#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "queueing/admission.h"
#include "queueing/fifo_queue.h"
#include "support/rng.h"
#include "synth/generator.h"

namespace fullweb::queueing {
namespace {

// ---------------------------------------------------------------- FIFO

TEST(Fifo, NoContentionZeroWaits) {
  const std::vector<double> arrivals = {0.0, 10.0, 20.0};
  const auto r = simulate_fifo_deterministic(arrivals, 1.0);
  ASSERT_TRUE(r.ok());
  for (double w : r.value().waits) EXPECT_DOUBLE_EQ(w, 0.0);
  EXPECT_DOUBLE_EQ(r.value().mean_wait, 0.0);
}

TEST(Fifo, BackToBackArrivalsQueueUp) {
  // Three simultaneous arrivals, 1 s service: waits 0, 1, 2.
  const std::vector<double> arrivals = {0.0, 0.0, 0.0};
  const auto r = simulate_fifo_deterministic(arrivals, 1.0);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().waits.size(), 3U);
  EXPECT_DOUBLE_EQ(r.value().waits[0], 0.0);
  EXPECT_DOUBLE_EQ(r.value().waits[1], 1.0);
  EXPECT_DOUBLE_EQ(r.value().waits[2], 2.0);
  EXPECT_DOUBLE_EQ(r.value().max_wait, 2.0);
}

TEST(Fifo, LindleyRecursionHandChecked) {
  // Arrivals 0, 1, 5; service 3: waits 0, 2, 0... second starts at 3
  // (wait 2), finishes 6; third arrives 5, starts 6 (wait 1).
  const std::vector<double> arrivals = {0.0, 1.0, 5.0};
  const auto r = simulate_fifo_deterministic(arrivals, 3.0);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().waits[0], 0.0);
  EXPECT_DOUBLE_EQ(r.value().waits[1], 2.0);
  EXPECT_DOUBLE_EQ(r.value().waits[2], 1.0);
}

TEST(Fifo, UtilizationMatchesLoad) {
  // 1000 arrivals at rate 1/s, service 0.5 s: rho ~ 0.5.
  std::vector<double> arrivals;
  for (int i = 0; i < 1000; ++i) arrivals.push_back(static_cast<double>(i));
  const auto r = simulate_fifo_deterministic(arrivals, 0.5);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().utilization, 0.5, 0.01);
}

TEST(Fifo, MM1MeanWaitMatchesTheory) {
  // M/M/1 with lambda = 1, mu = 2 (rho = 0.5): E[Wq] = rho/(mu - lambda)
  // = 0.5. Simulate long enough to converge.
  support::Rng rng(1);
  std::vector<double> arrivals;
  double t = 0.0;
  for (int i = 0; i < 200000; ++i) {
    t += -std::log(rng.uniform_pos());
    arrivals.push_back(t);
  }
  const auto r = simulate_fifo(arrivals, [&rng] {
    return -0.5 * std::log(rng.uniform_pos());
  });
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().mean_wait, 0.5, 0.05);
  EXPECT_NEAR(r.value().utilization, 0.5, 0.02);
}

TEST(Fifo, RejectsUnsortedArrivals) {
  const std::vector<double> arrivals = {5.0, 1.0};
  EXPECT_FALSE(simulate_fifo_deterministic(arrivals, 1.0).ok());
}

TEST(Fifo, RejectsBadServiceTime) {
  const std::vector<double> arrivals = {0.0, 1.0};
  EXPECT_FALSE(simulate_fifo_deterministic(arrivals, 0.0).ok());
  EXPECT_FALSE(simulate_fifo(arrivals, [] { return -1.0; }).ok());
}

TEST(Fifo, EmptyArrivals) {
  const auto r = simulate_fifo_deterministic({}, 1.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().arrivals, 0U);
}

TEST(Fifo, LrdTrafficWaitsDominatePoissonAtEqualLoad) {
  // The capacity_planning example's claim as a regression test.
  support::Rng rng(2);
  synth::GeneratorOptions gen;
  gen.duration = 6 * 3600.0;
  gen.quantize_to_seconds = false;
  auto w = synth::generate_workload(synth::ServerProfile::csee(), gen, rng);
  ASSERT_TRUE(w.ok());
  std::vector<double> lrd;
  for (const auto& r : w.value().requests) lrd.push_back(r.time);
  const double rate = static_cast<double>(lrd.size()) / gen.duration;

  std::vector<double> poisson;
  double t = w.value().t0;
  for (;;) {
    t += -std::log(rng.uniform_pos()) / rate;
    if (t >= w.value().t1) break;
    poisson.push_back(t);
  }
  const double service = 0.7 / rate;
  const auto rl = simulate_fifo_deterministic(lrd, service);
  const auto rp = simulate_fifo_deterministic(poisson, service);
  ASSERT_TRUE(rl.ok());
  ASSERT_TRUE(rp.ok());
  EXPECT_GT(rl.value().p99_wait, 2.0 * rp.value().p99_wait);
}

// ------------------------------------------------------------ attribution

TEST(Attribution, MapsRequestsToSessions) {
  support::Rng rng(3);
  synth::GeneratorOptions gen;
  gen.duration = 6 * 3600.0;
  gen.scale = 0.5;
  auto w = synth::generate_workload(synth::ServerProfile::csee(), gen, rng);
  ASSERT_TRUE(w.ok());
  auto tagged = attribute_requests(w.value().requests, w.value().true_sessions);
  ASSERT_TRUE(tagged.ok());
  ASSERT_EQ(tagged.value().size(), w.value().requests.size());

  // Per-session request counts recovered exactly.
  std::vector<std::size_t> counts(w.value().true_sessions.size(), 0);
  for (const auto& r : tagged.value()) ++counts[r.session];
  for (std::size_t i = 0; i < counts.size(); ++i)
    EXPECT_EQ(counts[i], w.value().true_sessions[i].requests) << i;
}

TEST(Attribution, RejectsUnknownClient) {
  const std::vector<weblog::Request> requests = {{10.0, 99, 200, 1}};
  const std::vector<weblog::Session> sessions = {{1, 10.0, 20.0, 1, 1}};
  EXPECT_FALSE(attribute_requests(requests, sessions).ok());
}

// -------------------------------------------------------------- admission

std::vector<SessionRequest> burst_requests(std::size_t sessions,
                                           std::size_t per_session) {
  // All sessions interleave within the same seconds: heavy contention.
  // The within-second order rotates each second so the over-capacity
  // victims are not the same sessions every time (as in real traffic).
  std::vector<SessionRequest> out;
  for (std::size_t t = 0; t < per_session; ++t)
    for (std::size_t s = 0; s < sessions; ++s)
      out.push_back({static_cast<double>(t),
                     static_cast<std::uint32_t>((s + t) % sessions)});
  return out;
}

std::vector<weblog::Session> flat_sessions(std::size_t n, std::size_t requests,
                                           double length) {
  std::vector<weblog::Session> out;
  for (std::uint32_t i = 0; i < n; ++i)
    out.push_back({i, 0.0, length, requests, requests * 100});
  return out;
}

TEST(Admission, UnderCapacityEverythingCompletes) {
  const auto requests = burst_requests(5, 10);
  const auto sessions = flat_sessions(5, 10, 9.0);
  AdmissionOptions opts;
  opts.capacity_per_second = 100;
  support::Rng rng(4);
  const auto r = simulate_admission(requests, sessions, opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().completed, 5U);
  EXPECT_EQ(r.value().requests_rejected, 0U);
}

TEST(Admission, SessionAcBeatsRequestDroppingUnderOverload) {
  // Staggered arrivals: session s starts at second s and sends 1 req/s for
  // 30 s; steady-state offered load is ~30 req/s against capacity 10.
  // Session AC turns excess sessions away at the door and completes every
  // admitted one; request dropping keeps aborting sessions MID-stream
  // (wasting the capacity they already consumed), so it completes fewer.
  constexpr std::size_t kSessions = 120;
  constexpr std::size_t kPerSession = 30;
  std::vector<SessionRequest> requests;
  std::vector<weblog::Session> sessions;
  for (std::uint32_t s = 0; s < kSessions; ++s) {
    const double start = static_cast<double>(s);
    sessions.push_back({s, start, start + kPerSession - 1, kPerSession,
                        kPerSession * 100});
    for (std::size_t t = 0; t < kPerSession; ++t)
      requests.push_back({start + static_cast<double>(t), s});
  }
  std::sort(requests.begin(), requests.end(),
            [](const SessionRequest& a, const SessionRequest& b) {
              return a.time < b.time;
            });

  AdmissionOptions opts;
  opts.capacity_per_second = 10;
  support::Rng rng_a(5);
  support::Rng rng_b(5);
  opts.policy = AdmissionPolicy::kSessionBased;
  const auto sb = simulate_admission(requests, sessions, opts, rng_a);
  opts.policy = AdmissionPolicy::kRequestDropping;
  const auto rd = simulate_admission(requests, sessions, opts, rng_b);
  ASSERT_TRUE(sb.ok());
  ASSERT_TRUE(rd.ok());
  EXPECT_GT(sb.value().completion_rate(), rd.value().completion_rate() + 0.1);
  // Session AC never aborts an admitted session: served requests are not
  // wasted on sessions that later die.
  EXPECT_EQ(sb.value().completed * kPerSession, sb.value().requests_served);
}

TEST(Admission, RejectsZeroCapacity) {
  AdmissionOptions opts;
  opts.capacity_per_second = 0;
  support::Rng rng(6);
  EXPECT_FALSE(simulate_admission({}, {}, opts, rng).ok());
}

TEST(Admission, AbortedSessionsStopConsumingCapacity) {
  // One greedy session + many singletons; request dropping kills the
  // greedy one early, freeing capacity for the rest.
  std::vector<SessionRequest> requests;
  std::vector<weblog::Session> sessions;
  sessions.push_back({0, 0.0, 99.0, 100, 100});
  for (std::uint32_t s = 1; s <= 50; ++s)
    sessions.push_back({s, static_cast<double>(s), static_cast<double>(s), 1, 1});
  for (std::size_t t = 0; t < 100; ++t) requests.push_back({0.5 + t, 0});
  for (std::uint32_t s = 1; s <= 50; ++s)
    requests.push_back({static_cast<double>(s), s});
  std::sort(requests.begin(), requests.end(),
            [](const SessionRequest& a, const SessionRequest& b) {
              return a.time < b.time;
            });
  AdmissionOptions opts;
  opts.capacity_per_second = 1;
  opts.policy = AdmissionPolicy::kRequestDropping;
  opts.drop_probability = 1.0;
  support::Rng rng(7);
  const auto r = simulate_admission(requests, sessions, opts, rng);
  ASSERT_TRUE(r.ok());
  // The greedy session dies in second 1; singletons from then on mostly fit.
  EXPECT_GT(r.value().completed, 40U);
}

}  // namespace
}  // namespace fullweb::queueing
