// Tests for the statistical hypothesis tests: KPSS, Anderson-Darling,
// binomial meta-tests, and the digamma/trigamma special functions.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "stats/anderson_darling.h"
#include "stats/binomial.h"
#include "stats/distributions.h"
#include "stats/kpss.h"
#include "stats/special.h"
#include "support/rng.h"

namespace fullweb::stats {
namespace {

std::vector<double> white_noise(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal();
  return xs;
}

// ------------------------------------------------------------------ KPSS

TEST(Kpss, AcceptsWhiteNoise) {
  const auto xs = white_noise(5000, 1);
  const auto r = kpss_test(xs);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().stationary_at_5pct());
  EXPECT_LT(r.value().statistic, 0.463);
}

TEST(Kpss, AcceptsStationaryAr1) {
  support::Rng rng(2);
  std::vector<double> xs(20000);
  xs[0] = 0;
  for (std::size_t t = 1; t < xs.size(); ++t)
    xs[t] = 0.5 * xs[t - 1] + rng.normal();
  const auto r = kpss_test(xs);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().stationary_at_5pct());
}

TEST(Kpss, RejectsRandomWalk) {
  support::Rng rng(3);
  std::vector<double> xs(5000);
  double level = 0;
  for (auto& x : xs) {
    level += rng.normal();
    x = level;
  }
  const auto r = kpss_test(xs);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().stationary_at_5pct());
  EXPECT_LE(r.value().p_value, 0.01 + 1e-12);
}

TEST(Kpss, RejectsLinearTrendUnderLevelNull) {
  support::Rng rng(4);
  std::vector<double> xs(5000);
  for (std::size_t t = 0; t < xs.size(); ++t)
    xs[t] = 0.01 * static_cast<double>(t) + rng.normal();
  const auto r = kpss_test(xs, KpssNull::kLevel);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().stationary_at_5pct());
}

TEST(Kpss, TrendNullAcceptsTrendStationary) {
  support::Rng rng(8);  // seed 5 is a (legitimate) 5%-level false positive
  std::vector<double> xs(5000);
  for (std::size_t t = 0; t < xs.size(); ++t)
    xs[t] = 0.01 * static_cast<double>(t) + rng.normal();
  const auto r = kpss_test(xs, KpssNull::kTrend);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().stationary_at_5pct());
  EXPECT_DOUBLE_EQ(r.value().critical_5pct, 0.146);
}

TEST(Kpss, ExplicitLagHonored) {
  const auto xs = white_noise(1000, 6);
  const auto r = kpss_test(xs, KpssNull::kLevel, 7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().lag, 7U);
}

TEST(Kpss, AutomaticLagFormula) {
  const auto xs = white_noise(1000, 7);
  const auto r = kpss_test(xs);
  ASSERT_TRUE(r.ok());
  // floor(12 * (1000/100)^0.25) = floor(21.3) = 21
  EXPECT_EQ(r.value().lag, 21U);
}

TEST(Kpss, ErrorsOnTinySeries) {
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_FALSE(kpss_test(xs).ok());
}

TEST(Kpss, ErrorsOnConstantSeries) {
  const std::vector<double> xs(100, 5.0);
  EXPECT_FALSE(kpss_test(xs).ok());
}

// ---------------------------------------------------------- Anderson-Darling

TEST(AndersonDarling, AcceptsExponentialSample) {
  support::Rng rng(11);
  const Exponential e(3.0);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = e.sample(rng);
  const auto r = anderson_darling_exponential(xs);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().exponential_at_5pct());
  EXPECT_NEAR(r.value().lambda_hat, 3.0, 0.2);
}

TEST(AndersonDarling, RejectsUniformSample) {
  support::Rng rng(12);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = rng.uniform(0.5, 1.5);
  const auto r = anderson_darling_exponential(xs);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().exponential_at_5pct());
}

TEST(AndersonDarling, RejectsParetoSample) {
  support::Rng rng(13);
  const Pareto p(1.5, 1.0);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = p.sample(rng);
  const auto r = anderson_darling_exponential(xs);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().exponential_at_5pct());
}

TEST(AndersonDarling, RejectsLognormalSample) {
  support::Rng rng(14);
  const Lognormal ln(0.0, 1.0);
  std::vector<double> xs(2000);
  for (auto& x : xs) x = ln.sample(rng);
  const auto r = anderson_darling_exponential(xs);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().exponential_at_5pct());
}

TEST(AndersonDarling, FalseRejectionRateNear5Percent) {
  // Calibration check of the 1.341 critical value.
  int rejections = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    support::Rng rng(1000 + t);
    const Exponential e(1.0);
    std::vector<double> xs(200);
    for (auto& x : xs) x = e.sample(rng);
    const auto r = anderson_darling_exponential(xs);
    ASSERT_TRUE(r.ok());
    if (!r.value().exponential_at_5pct()) ++rejections;
  }
  const double rate = static_cast<double>(rejections) / trials;
  EXPECT_GT(rate, 0.01);
  EXPECT_LT(rate, 0.11);
}

TEST(AndersonDarling, ErrorsOnTinyOrInvalidSamples) {
  EXPECT_FALSE(anderson_darling_exponential(std::vector<double>{1, 2}).ok());
  EXPECT_FALSE(
      anderson_darling_exponential(std::vector<double>{1, 2, -1, 3, 4}).ok());
  EXPECT_FALSE(
      anderson_darling_exponential(std::vector<double>{0, 0, 0, 0, 0}).ok());
}

TEST(AndersonDarling, CriticalValueTable) {
  EXPECT_DOUBLE_EQ(ad_exponential_critical(0.05), 1.341);
  EXPECT_DOUBLE_EQ(ad_exponential_critical(0.01), 1.957);
  EXPECT_THROW(ad_exponential_critical(0.2), std::invalid_argument);
}

// --------------------------------------------------------------- Binomial

TEST(Binomial, PmfKnownValues) {
  EXPECT_NEAR(binomial_pmf(4, 0.95, 4), 0.81450625, 1e-9);
  EXPECT_NEAR(binomial_pmf(4, 0.95, 3), 0.171475, 1e-6);
  EXPECT_NEAR(binomial_pmf(4, 0.95, 2), 0.0135375, 1e-7);
  EXPECT_NEAR(binomial_pmf(4, 0.5, 2), 0.375, 1e-12);
}

TEST(Binomial, PmfSumsToOne) {
  double total = 0;
  for (std::size_t k = 0; k <= 24; ++k) total += binomial_pmf(24, 0.95, k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Binomial, CdfMonotone) {
  double prev = 0;
  for (std::size_t k = 0; k <= 10; ++k) {
    const double c = binomial_cdf(10, 0.3, k);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(binomial_cdf(10, 0.3, 10), 1.0);
}

TEST(Binomial, EdgeProbabilities) {
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 0.5, 6), 0.0);
}

TEST(CountTest, PaperExampleFourIntervals) {
  // With 4 intervals at 95% pass rate: s = 4 or 3 do not reject; s <= 2 does.
  EXPECT_FALSE(binomial_count_test(4, 4).rejected);
  EXPECT_FALSE(binomial_count_test(4, 3).rejected);
  EXPECT_TRUE(binomial_count_test(4, 2).rejected);
  EXPECT_TRUE(binomial_count_test(4, 0).rejected);
}

TEST(CountTest, TwentyFourIntervals) {
  // 10-minute split of a 4-hour window: 24 intervals.
  EXPECT_FALSE(binomial_count_test(24, 24).rejected);
  EXPECT_FALSE(binomial_count_test(24, 22).rejected);
  EXPECT_TRUE(binomial_count_test(24, 19).rejected);
}

TEST(CountTest, EmptyIsNoVerdict) {
  const auto t = binomial_count_test(0, 0);
  EXPECT_FALSE(t.rejected);
}

TEST(SignTest, BalancedNotSignificant) {
  const auto t = sign_test(4, 2);
  EXPECT_FALSE(t.significant_positive);
  EXPECT_FALSE(t.significant_negative);
}

TEST(SignTest, ExtremeCountsSignificantWhenNLargeEnough) {
  // With n = 4, P(X = 4 | B(4, .5)) = 0.0625 > 0.025: not significant.
  EXPECT_FALSE(sign_test(4, 4).significant_positive);
  // With n = 8, P(X = 8) = 0.0039 < 0.025: significant.
  const auto t = sign_test(8, 8);
  EXPECT_TRUE(t.significant_positive);
  EXPECT_FALSE(t.significant_negative);
  const auto tneg = sign_test(8, 0);
  EXPECT_TRUE(tneg.significant_negative);
}

// ---------------------------------------------------------------- Special

TEST(Digamma, KnownValues) {
  constexpr double kEulerGamma = 0.5772156649015329;
  EXPECT_NEAR(digamma(1.0), -kEulerGamma, 1e-10);
  EXPECT_NEAR(digamma(2.0), 1.0 - kEulerGamma, 1e-10);
  EXPECT_NEAR(digamma(0.5), -kEulerGamma - 2.0 * std::log(2.0), 1e-10);
  EXPECT_NEAR(digamma(10.0), 2.251752589066721, 1e-10);
}

TEST(Digamma, RecurrenceHolds) {
  for (double x : {0.3, 1.7, 4.2, 25.0})
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10);
}

TEST(Trigamma, KnownValues) {
  EXPECT_NEAR(trigamma(1.0), std::numbers::pi * std::numbers::pi / 6.0, 1e-10);
  EXPECT_NEAR(trigamma(2.0), std::numbers::pi * std::numbers::pi / 6.0 - 1.0,
              1e-10);
}

TEST(Trigamma, RecurrenceHolds) {
  for (double x : {0.4, 1.3, 6.6, 40.0})
    EXPECT_NEAR(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-10);
}

TEST(Special, RejectNonPositive) {
  EXPECT_THROW(digamma(0.0), std::invalid_argument);
  EXPECT_THROW(trigamma(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace fullweb::stats
