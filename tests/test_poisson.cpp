#include "poisson/poisson_test.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/distributions.h"
#include "support/rng.h"

namespace fullweb::poisson {
namespace {

/// Homogeneous Poisson arrivals over [0, horizon) at the given rate.
std::vector<double> poisson_arrivals(double rate, double horizon,
                                     std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> times;
  double t = 0.0;
  for (;;) {
    t += -std::log(rng.uniform_pos()) / rate;
    if (t >= horizon) break;
    times.push_back(t);
  }
  return times;
}

/// Markov-modulated (bursty, positively correlated) arrivals: alternating
/// high/low rate phases with heavy-tailed phase lengths.
std::vector<double> bursty_arrivals(double horizon, std::uint64_t seed) {
  support::Rng rng(seed);
  const stats::Pareto phase_len(1.3, 20.0);
  std::vector<double> times;
  double t = 0.0;
  bool high = true;
  while (t < horizon) {
    const double phase_end = std::min(horizon, t + phase_len.sample(rng));
    const double rate = high ? 8.0 : 0.3;
    while (t < phase_end) {
      t += -std::log(rng.uniform_pos()) / rate;
      if (t < phase_end) times.push_back(t);
    }
    t = phase_end;
    high = !high;
  }
  return times;
}

std::vector<double> quantize(std::vector<double> times) {
  for (auto& t : times) t = std::floor(t);
  return times;
}

// ------------------------------------------------------------- spreading

TEST(SpreadSubsecond, NoneSortsOnly) {
  support::Rng rng(1);
  const std::vector<double> times = {3.0, 1.0, 2.0};
  const auto out = spread_subsecond(times, SpreadMode::kNone, 1.0, rng);
  EXPECT_EQ(out, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(SpreadSubsecond, DeterministicEvenlySpaces) {
  support::Rng rng(2);
  const std::vector<double> times = {5.0, 5.0, 5.0, 5.0};
  const auto out = spread_subsecond(times, SpreadMode::kDeterministic, 1.0, rng);
  ASSERT_EQ(out.size(), 4U);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(out[i], 5.0 + (static_cast<double>(i) + 0.5) / 4.0);
}

TEST(SpreadSubsecond, UniformStaysInsideSecondAndSorted) {
  support::Rng rng(3);
  std::vector<double> times(100, 7.0);
  times.insert(times.end(), 50, 9.0);
  const auto out = spread_subsecond(times, SpreadMode::kUniform, 1.0, rng);
  ASSERT_EQ(out.size(), 150U);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_GE(out[i], 7.0);
    EXPECT_LT(out[i], 8.0);
  }
  for (std::size_t i = 100; i < 150; ++i) {
    EXPECT_GE(out[i], 9.0);
    EXPECT_LT(out[i], 10.0);
  }
}

TEST(SpreadSubsecond, RespectsGranularity) {
  support::Rng rng(4);
  const std::vector<double> times = {10.0, 10.0, 20.0};
  const auto out = spread_subsecond(times, SpreadMode::kUniform, 10.0, rng);
  EXPECT_GE(out[0], 10.0);
  EXPECT_LT(out[1], 20.0);
  EXPECT_GE(out[2], 20.0);
}

// ----------------------------------------------------------- the battery

TEST(PoissonTest, AcceptsTruePoissonArrivals) {
  // 4 hours at 2/s, quantized to seconds then uniformly re-spread — the
  // exact situation of the paper's session-level CSEE Low/Med finding.
  const auto times = quantize(poisson_arrivals(2.0, 4 * 3600.0, 5));
  support::Rng rng(6);
  PoissonTestOptions opts;
  const auto r = test_poisson_arrivals(times, 0.0, 4 * 3600.0, opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().independent);
  EXPECT_TRUE(r.value().exponential);
  EXPECT_TRUE(r.value().poisson());
  EXPECT_EQ(r.value().usable_intervals, 4U);
}

TEST(PoissonTest, AcceptsPoissonWithDeterministicSpreadingAtLowRate) {
  // Deterministic spreading regularizes the within-second gaps, so it only
  // preserves exponentiality when same-second collisions are rare — i.e. at
  // low rates (the regime of the paper's session-level CSEE finding).
  const auto times = quantize(poisson_arrivals(0.08, 4 * 3600.0, 7));
  support::Rng rng(8);
  PoissonTestOptions opts;
  opts.spread = SpreadMode::kDeterministic;
  const auto r = test_poisson_arrivals(times, 0.0, 4 * 3600.0, opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().poisson());
}

TEST(PoissonTest, DeterministicSpreadingDistortsHighRatePoisson) {
  // At 2 events/s most seconds hold multiple events; evenly spacing them
  // manufactures regularity that the A^2 test correctly flags ([29]: the
  // sub-second placement assumption can matter).
  const auto times = quantize(poisson_arrivals(2.0, 4 * 3600.0, 7));
  support::Rng rng(8);
  PoissonTestOptions opts;
  opts.spread = SpreadMode::kDeterministic;
  const auto r = test_poisson_arrivals(times, 0.0, 4 * 3600.0, opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().exponential);
}

TEST(PoissonTest, RejectsBurstyArrivals) {
  const auto times = quantize(bursty_arrivals(4 * 3600.0, 9));
  support::Rng rng(10);
  const auto r = test_poisson_arrivals(times, 0.0, 4 * 3600.0, {}, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().poisson());
}

TEST(PoissonTest, RejectsConstantSpacingAsNonExponential) {
  // Perfectly regular arrivals: independent but wildly non-exponential.
  std::vector<double> times;
  for (double t = 0.25; t < 4 * 3600.0; t += 0.5) times.push_back(t);
  support::Rng rng(11);
  PoissonTestOptions opts;
  opts.spread = SpreadMode::kNone;
  const auto r = test_poisson_arrivals(times, 0.0, 4 * 3600.0, opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().exponential);
  EXPECT_FALSE(r.value().poisson());
}

TEST(PoissonTest, TenMinuteIntervalsProduceTwentyFour) {
  const auto times = quantize(poisson_arrivals(1.0, 4 * 3600.0, 12));
  support::Rng rng(13);
  PoissonTestOptions opts;
  opts.interval_seconds = 600.0;
  const auto r = test_poisson_arrivals(times, 0.0, 4 * 3600.0, opts, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().intervals.size(), 24U);
  EXPECT_EQ(r.value().usable_intervals, 24U);
  EXPECT_TRUE(r.value().poisson());
}

TEST(PoissonTest, InsufficientEventsIsError) {
  const auto times = quantize(poisson_arrivals(0.002, 4 * 3600.0, 14));
  support::Rng rng(15);
  const auto r = test_poisson_arrivals(times, 0.0, 4 * 3600.0, {}, rng);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().category, "insufficient_data");
}

TEST(PoissonTest, WindowBoundsFilterEvents) {
  auto times = quantize(poisson_arrivals(2.0, 8 * 3600.0, 16));
  support::Rng rng(17);
  const auto r =
      test_poisson_arrivals(times, 4 * 3600.0, 8 * 3600.0, {}, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().intervals.size(), 4U);
  for (const auto& d : r.value().intervals) EXPECT_GE(d.start, 4 * 3600.0);
}

TEST(PoissonTest, DiagnosticsExposePerIntervalDetail) {
  const auto times = quantize(poisson_arrivals(2.0, 4 * 3600.0, 18));
  support::Rng rng(19);
  const auto r = test_poisson_arrivals(times, 0.0, 4 * 3600.0, {}, rng);
  ASSERT_TRUE(r.ok());
  for (const auto& d : r.value().intervals) {
    ASSERT_TRUE(d.usable);
    EXPECT_GT(d.events, 1000U);
    EXPECT_GT(d.rho_threshold, 0.0);
    EXPECT_LT(std::fabs(d.rho1), 1.0);
  }
}

TEST(PoissonTest, BadWindowErrors) {
  support::Rng rng(20);
  const std::vector<double> times = {1.0, 2.0};
  EXPECT_FALSE(test_poisson_arrivals(times, 10.0, 5.0, {}, rng).ok());
  PoissonTestOptions opts;
  opts.interval_seconds = -1.0;
  EXPECT_FALSE(test_poisson_arrivals(times, 0.0, 10.0, opts, rng).ok());
}

TEST(PoissonTest, SpreadingChoiceDoesNotFlipPoissonVerdict) {
  // The paper's robustness claim (§4.2): uniform vs deterministic spreading
  // leads to the same conclusion (checked at a low rate where both are
  // faithful, and on bursty data where both must reject).
  const auto times = quantize(poisson_arrivals(0.08, 4 * 3600.0, 21));
  support::Rng rng_a(22);
  support::Rng rng_b(23);
  PoissonTestOptions uni;
  uni.spread = SpreadMode::kUniform;
  PoissonTestOptions det;
  det.spread = SpreadMode::kDeterministic;
  const auto ra = test_poisson_arrivals(times, 0.0, 4 * 3600.0, uni, rng_a);
  const auto rb = test_poisson_arrivals(times, 0.0, 4 * 3600.0, det, rng_b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(ra.value().poisson(), rb.value().poisson());

  const auto bursty = quantize(bursty_arrivals(4 * 3600.0, 24));
  const auto ba = test_poisson_arrivals(bursty, 0.0, 4 * 3600.0, uni, rng_a);
  const auto bb = test_poisson_arrivals(bursty, 0.0, 4 * 3600.0, det, rng_b);
  ASSERT_TRUE(ba.ok());
  ASSERT_TRUE(bb.ok());
  EXPECT_EQ(ba.value().poisson(), bb.value().poisson());
  EXPECT_FALSE(ba.value().poisson());
}

}  // namespace
}  // namespace fullweb::poisson
