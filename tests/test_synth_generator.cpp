#include "synth/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "tail/llcd.h"
#include "weblog/sessionizer.h"

namespace fullweb::synth {
namespace {

GeneratorOptions day_options(double scale = 1.0) {
  GeneratorOptions opts;
  opts.scale = scale;
  opts.duration = 86400.0;
  return opts;
}

TEST(Profiles, AllFourOrderedByVolume) {
  const auto all = ServerProfile::all_four();
  ASSERT_EQ(all.size(), 4U);
  EXPECT_EQ(all[0].name, "WVU");
  EXPECT_EQ(all[1].name, "ClarkNet");
  EXPECT_EQ(all[2].name, "CSEE");
  EXPECT_EQ(all[3].name, "NASA-Pub2");
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i - 1].week_sessions * all[i - 1].requests_mean,
              all[i].week_sessions * all[i].requests_mean);
  }
}

TEST(Profiles, LrdGrowsWithWorkloadIntensity) {
  // The paper: degree of self-similarity increases with traffic intensity.
  const auto all = ServerProfile::all_four();
  for (std::size_t i = 1; i < all.size(); ++i)
    EXPECT_GT(all[i - 1].hurst, all[i].hurst);
}

TEST(Generator, RejectsBadOptions) {
  support::Rng rng(1);
  GeneratorOptions opts;
  opts.scale = 0.0;
  EXPECT_FALSE(generate_workload(ServerProfile::csee(), opts, rng).ok());
  opts.scale = 1.0;
  opts.duration = 60.0;
  EXPECT_FALSE(generate_workload(ServerProfile::csee(), opts, rng).ok());
}

TEST(Generator, VolumeMatchesProfileTarget) {
  support::Rng rng(2);
  const auto profile = ServerProfile::csee();
  const auto w = generate_workload(profile, day_options(), rng);
  ASSERT_TRUE(w.ok());
  const double expected_sessions = profile.week_sessions / 7.0;
  EXPECT_NEAR(static_cast<double>(w.value().true_sessions.size()),
              expected_sessions, 0.25 * expected_sessions);
  const double mean_requests =
      static_cast<double>(w.value().requests.size()) /
      static_cast<double>(w.value().true_sessions.size());
  EXPECT_NEAR(mean_requests, profile.requests_mean, 0.3 * profile.requests_mean);
}

TEST(Generator, ScaleScalesVolume) {
  support::Rng rng_a(3);
  support::Rng rng_b(3);
  const auto profile = ServerProfile::clarknet();
  const auto full = generate_workload(profile, day_options(1.0), rng_a);
  const auto tenth = generate_workload(profile, day_options(0.1), rng_b);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(tenth.ok());
  const double ratio = static_cast<double>(full.value().true_sessions.size()) /
                       static_cast<double>(tenth.value().true_sessions.size());
  EXPECT_NEAR(ratio, 10.0, 2.0);
}

TEST(Generator, RequestsSortedAndInsideWindow) {
  support::Rng rng(4);
  const auto w = generate_workload(ServerProfile::nasa_pub2(), day_options(), rng);
  ASSERT_TRUE(w.ok());
  const auto& reqs = w.value().requests;
  ASSERT_FALSE(reqs.empty());
  EXPECT_TRUE(std::is_sorted(reqs.begin(), reqs.end(),
                             [](const weblog::Request& a, const weblog::Request& b) {
                               return a.time < b.time;
                             }));
  for (const auto& r : reqs) {
    EXPECT_GE(r.time, w.value().t0);
    EXPECT_LT(r.time, w.value().t1);
  }
}

TEST(Generator, QuantizedTimestampsAreIntegers) {
  support::Rng rng(5);
  const auto w = generate_workload(ServerProfile::nasa_pub2(), day_options(), rng);
  ASSERT_TRUE(w.ok());
  for (const auto& r : w.value().requests)
    EXPECT_DOUBLE_EQ(r.time, std::floor(r.time));
}

TEST(Generator, SessionizerRecoversGroundTruthExactly) {
  // The reuse margin and think-time cap guarantee the 30-minute sessionizer
  // reconstructs the generated sessions one-for-one.
  support::Rng rng(6);
  const auto w = generate_workload(ServerProfile::csee(), day_options(0.3), rng);
  ASSERT_TRUE(w.ok());
  auto recovered = weblog::sessionize(w.value().requests);
  auto truth = w.value().true_sessions;
  ASSERT_EQ(recovered.size(), truth.size());
  // Same-second session starts make the by-start order ambiguous; compare
  // under a total order instead.
  auto total_order = [](const weblog::Session& a, const weblog::Session& b) {
    return std::tie(a.start, a.client, a.requests, a.bytes) <
           std::tie(b.start, b.client, b.requests, b.bytes);
  };
  std::sort(recovered.begin(), recovered.end(), total_order);
  std::sort(truth.begin(), truth.end(), total_order);
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_DOUBLE_EQ(recovered[i].start, truth[i].start);
    EXPECT_EQ(recovered[i].client, truth[i].client);
    EXPECT_EQ(recovered[i].requests, truth[i].requests);
    EXPECT_EQ(recovered[i].bytes, truth[i].bytes);
  }
}

TEST(Generator, ThinkTimesRespectSessionThreshold) {
  support::Rng rng(7);
  const auto w = generate_workload(ServerProfile::wvu(), day_options(0.02), rng);
  ASSERT_TRUE(w.ok());
  // Within any true session, consecutive request gaps stay <= 1800 s.
  // Verify via the recovered sessions' internal gaps: group by client.
  for (const auto& s : w.value().true_sessions) {
    EXPECT_LE(s.length(), 86400.0);
    if (s.requests > 1) {
      EXPECT_LE(s.length() / static_cast<double>(s.requests - 1), 1800.0);
    }
  }
}

TEST(Generator, DiurnalCycleVisible) {
  // Hour-of-day arrival totals must swing by the configured amplitude.
  support::Rng rng(8);
  GeneratorOptions opts;
  opts.duration = 3 * 86400.0;
  auto profile = ServerProfile::clarknet();
  profile.rate_log_sigma = 0.05;  // quiet noise so the sinusoid dominates
  const auto w = generate_workload(profile, opts, rng);
  ASSERT_TRUE(w.ok());
  std::vector<double> hourly(24, 0.0);
  for (const auto& s : w.value().true_sessions) {
    const double tod = std::fmod(s.start - w.value().t0, 86400.0);
    hourly[static_cast<std::size_t>(tod / 3600.0)] += 1.0;
  }
  const double peak = *std::max_element(hourly.begin(), hourly.end());
  const double trough = *std::min_element(hourly.begin(), hourly.end());
  EXPECT_GT(peak, 1.5 * trough);
}

TEST(Generator, RequestsPerSessionTailMatchesProfile) {
  support::Rng rng(9);
  GeneratorOptions opts;
  opts.duration = 4 * 86400.0;
  const auto w = generate_workload(ServerProfile::csee(), opts, rng);
  ASSERT_TRUE(w.ok());
  std::vector<double> counts;
  for (const auto& s : w.value().true_sessions)
    counts.push_back(static_cast<double>(s.requests));
  const auto fit = tail::llcd_fit(counts);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().alpha, ServerProfile::csee().requests_alpha, 0.5);
}

TEST(Generator, DeterministicForSeed) {
  support::Rng rng_a(10);
  support::Rng rng_b(10);
  const auto a = generate_workload(ServerProfile::nasa_pub2(), day_options(), rng_a);
  const auto b = generate_workload(ServerProfile::nasa_pub2(), day_options(), rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().requests.size(), b.value().requests.size());
  for (std::size_t i = 0; i < a.value().requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.value().requests[i].time, b.value().requests[i].time);
    EXPECT_EQ(a.value().requests[i].bytes, b.value().requests[i].bytes);
  }
}

TEST(Generator, LogEntriesMatchRequests) {
  support::Rng rng(11);
  const auto w = generate_workload(ServerProfile::nasa_pub2(), day_options(), rng);
  ASSERT_TRUE(w.ok());
  support::Rng rng2(12);
  const auto entries = to_log_entries(w.value(), rng2);
  ASSERT_EQ(entries.size(), w.value().requests.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(entries[i].timestamp, w.value().requests[i].time);
    EXPECT_EQ(entries[i].bytes, w.value().requests[i].bytes);
    EXPECT_FALSE(entries[i].client.empty());
    EXPECT_EQ(entries[i].method, "GET");
  }
}

TEST(Generator, SameClientIpStableAcrossSessions) {
  support::Rng rng(13);
  GeneratorOptions opts = day_options();
  opts.client_reuse_prob = 1.0;  // force reuse whenever safe
  const auto w = generate_workload(ServerProfile::csee(), opts, rng);
  ASSERT_TRUE(w.ok());
  // With aggressive reuse, distinct clients < sessions.
  EXPECT_LT(w.value().clients, w.value().true_sessions.size());
}

TEST(GenerateDataset, WrapsIntoDataset) {
  support::Rng rng(14);
  const auto ds = generate_dataset(ServerProfile::nasa_pub2(), day_options(), rng);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().name(), "NASA-Pub2");
  EXPECT_GT(ds.value().requests().size(), 1000U);
  EXPECT_GT(ds.value().sessions().size(), 100U);
}


TEST(Generator, RequestsCapEnforced) {
  support::Rng rng(15);
  auto profile = ServerProfile::nasa_pub2();  // ships with requests_cap = 60
  GeneratorOptions opts;
  opts.duration = 3 * 86400.0;
  const auto w = generate_workload(profile, opts, rng);
  ASSERT_TRUE(w.ok());
  for (const auto& s : w.value().true_sessions)
    EXPECT_LE(s.requests, 60U);
}

TEST(Generator, UncappedProfileExceedsNasaCap) {
  // The cap is a NASA-specific concession; other profiles draw unbounded
  // Pareto request counts and exceed 60 somewhere in a day of traffic.
  support::Rng rng(16);
  GeneratorOptions opts;
  opts.duration = 86400.0;
  const auto w = generate_workload(ServerProfile::csee(), opts, rng);
  ASSERT_TRUE(w.ok());
  std::uint64_t max_requests = 0;
  for (const auto& s : w.value().true_sessions)
    max_requests = std::max(max_requests, s.requests);
  EXPECT_GT(max_requests, 60U);
}

TEST(Generator, StatusMixMatchesDesign) {
  support::Rng rng(17);
  GeneratorOptions opts;
  opts.duration = 86400.0;
  const auto w = generate_workload(ServerProfile::clarknet(), opts, rng);
  ASSERT_TRUE(w.ok());
  std::size_t ok200 = 0, not_modified = 0, errors = 0;
  for (const auto& r : w.value().requests) {
    if (r.status == 200) ++ok200;
    else if (r.status == 304) ++not_modified;
    else if (r.status >= 400) ++errors;
  }
  const auto n = static_cast<double>(w.value().requests.size());
  EXPECT_NEAR(ok200 / n, 0.90, 0.02);
  EXPECT_NEAR(not_modified / n, 0.055, 0.02);
  EXPECT_NEAR(errors / n, 0.045, 0.02);
}

}  // namespace
}  // namespace fullweb::synth
