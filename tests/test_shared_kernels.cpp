// Tests for the compute-sharing layer: PrefixMoments, AggregationPyramid,
// the vectorized block kernels, the deterministic exp/log batch kernels, and
// the shared-input estimator suite.
//
// Three kinds of guarantees are pinned here:
//  1. Equivalence: every shared-structure query matches a naive (long
//     double) reference on randomized inputs, and every ported estimator
//     matches an in-test reimplementation of its pre-port algorithm.
//  2. Precision: the compensated paths survive a large mean offset that
//     breaks naive summation (the satellite regression tests).
//  3. Determinism: suite and sweep results are bit-identical across
//     executor widths and across shared-vs-standalone input structures
//     (this binary also runs under the TSan gate).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "lrd/estimator_suite.h"
#include "stats/descriptive.h"
#include "stats/kpss.h"
#include "stats/prefix_moments.h"
#include "stats/regression.h"
#include "stats/vecmath.h"
#include "support/executor.h"
#include "support/rng.h"
#include "timeseries/fgn.h"
#include "timeseries/pyramid.h"
#include "timeseries/series.h"

namespace fullweb {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

std::vector<double> random_series(std::size_t n, std::uint64_t seed,
                                  double offset = 0.0) {
  support::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = offset + rng.normal() + 0.1 * rng.uniform();
  return xs;
}

long double ld_sum(std::span<const double> xs, std::size_t i, std::size_t j) {
  long double s = 0.0L;
  for (std::size_t t = i; t < j; ++t) s += xs[t];
  return s;
}

long double ld_ssd(std::span<const double> xs, std::size_t i, std::size_t j) {
  const long double m = ld_sum(xs, i, j) / static_cast<long double>(j - i);
  long double s = 0.0L;
  for (std::size_t t = i; t < j; ++t) {
    const long double d = static_cast<long double>(xs[t]) - m;
    s += d * d;
  }
  return s;
}

// ---------------------------------------------------------------------------
// PrefixMoments vs naive references.

TEST(PrefixMoments, MatchesNaiveOnRandomBlocks) {
  const auto xs = random_series(257, 11);
  const stats::PrefixMoments pm(xs);
  ASSERT_EQ(pm.size(), xs.size());

  support::Rng rng(22);
  for (int rep = 0; rep < 300; ++rep) {
    std::size_t i = rng.below(xs.size());
    std::size_t j = rng.below(xs.size() + 1);
    if (i > j) std::swap(i, j);
    const auto fsum = static_cast<double>(ld_sum(xs, i, j));
    EXPECT_NEAR(pm.sum(i, j), fsum, 1e-10 + 1e-12 * std::abs(fsum));
    if (j > i) {
      const double fmean = fsum / static_cast<double>(j - i);
      EXPECT_NEAR(pm.block_mean(i, j), fmean, 1e-12 + 1e-12 * std::abs(fmean));
      const auto fssd = static_cast<double>(ld_ssd(xs, i, j));
      EXPECT_NEAR(pm.block_sum_sq_dev(i, j), fssd, 1e-9 + 1e-9 * fssd);
      EXPECT_GE(pm.block_variance(i, j), 0.0);
    }
  }
}

TEST(PrefixMoments, CenteredCumsumMatchesNaive) {
  const auto xs = random_series(100, 33);
  const stats::PrefixMoments pm(xs);
  const auto cum = pm.centered_cumsum();
  ASSERT_EQ(cum.size(), xs.size() + 1);
  EXPECT_EQ(cum[0], 0.0);
  const long double mean = ld_sum(xs, 0, xs.size()) /
                           static_cast<long double>(xs.size());
  long double run = 0.0L;
  for (std::size_t t = 0; t < xs.size(); ++t) {
    run += static_cast<long double>(xs[t]) - mean;
    EXPECT_NEAR(cum[t + 1], static_cast<double>(run), 1e-10);
  }
}

TEST(PrefixMoments, ConstantSeriesVarianceIsExactlyZero) {
  const std::vector<double> xs(123, 7.0);
  const stats::PrefixMoments pm(xs);
  EXPECT_EQ(pm.anchor(), 7.0);
  EXPECT_EQ(pm.block_variance(0, xs.size()), 0.0);
  EXPECT_EQ(pm.block_variance(17, 55), 0.0);
  EXPECT_EQ(pm.aggregated_variance(5), 0.0);
  EXPECT_EQ(pm.aggregated_variance(123), 0.0);
}

TEST(PrefixMoments, EmbeddedConstantBlockVarianceIsTinyNonNegative) {
  auto xs = random_series(200, 44);
  for (std::size_t t = 40; t < 60; ++t) xs[t] = 5.0;
  const stats::PrefixMoments pm(xs);
  const double v = pm.block_variance(40, 60);
  EXPECT_GE(v, 0.0);  // the clamp: never tiny-negative
  EXPECT_LE(v, 1e-9);
}

TEST(PrefixMoments, WeightedPrefixesMatchNaive) {
  const auto xs = random_series(150, 55);
  const stats::PrefixMoments pm(xs, stats::PrefixMoments::Weighted::kQuadratic);
  const double anchor = pm.anchor();
  support::Rng rng(66);
  for (int rep = 0; rep < 100; ++rep) {
    std::size_t i = rng.below(xs.size());
    std::size_t j = rng.below(xs.size() + 1);
    if (i > j) std::swap(i, j);
    long double w = 0.0L, w2 = 0.0L;
    for (std::size_t t = i; t < j; ++t) {
      const long double v = static_cast<long double>(xs[t]) - anchor;
      w += static_cast<long double>(t) * v;
      w2 += static_cast<long double>(t) * static_cast<long double>(t) * v;
    }
    EXPECT_NEAR(pm.weighted_centered_sum(i, j), static_cast<double>(w),
                1e-8 + 1e-10 * std::abs(static_cast<double>(w)));
    EXPECT_NEAR(pm.weighted2_centered_sum(i, j), static_cast<double>(w2),
                1e-6 + 1e-10 * std::abs(static_cast<double>(w2)));
  }
}

TEST(MomentSummary, OfMatchesNaiveAndPrefixMoments) {
  const auto xs = random_series(513, 77);
  const auto s = stats::MomentSummary::of(xs);
  ASSERT_EQ(s.count, xs.size());
  const auto fsum = static_cast<double>(ld_sum(xs, 0, xs.size()));
  EXPECT_NEAR(s.mean, fsum / static_cast<double>(xs.size()), 1e-12);
  const auto fssd = static_cast<double>(ld_ssd(xs, 0, xs.size()));
  EXPECT_NEAR(s.m2, fssd, 1e-9 + 1e-9 * fssd);
  EXPECT_EQ(s.min, *std::min_element(xs.begin(), xs.end()));
  EXPECT_EQ(s.max, *std::max_element(xs.begin(), xs.end()));

  const stats::PrefixMoments pm(xs);
  const auto ps = pm.summary();
  EXPECT_EQ(ps.count, s.count);
  EXPECT_NEAR(ps.mean, s.mean, 1e-12 + 1e-12 * std::abs(s.mean));
  EXPECT_NEAR(ps.m2, s.m2, 1e-9 + 1e-9 * s.m2);
}

TEST(MomentSummary, MergeOfDisjointPartsMatchesWhole) {
  const auto xs = random_series(1000, 99);
  const auto whole = stats::MomentSummary::of(xs);

  support::Rng rng(5);
  for (int rep = 0; rep < 50; ++rep) {
    // Random partition into up to 7 contiguous parts (some possibly empty),
    // merged left-to-right: must reproduce the one-shot summary.
    std::vector<std::size_t> cuts = {0, xs.size()};
    for (int c = 0; c < 6; ++c) cuts.push_back(rng.below(xs.size() + 1));
    std::sort(cuts.begin(), cuts.end());
    stats::MomentSummary merged;
    for (std::size_t k = 0; k + 1 < cuts.size(); ++k)
      merged.merge(stats::MomentSummary::of(
          std::span<const double>(xs).subspan(cuts[k], cuts[k + 1] - cuts[k])));
    EXPECT_EQ(merged.count, whole.count);
    EXPECT_EQ(merged.min, whole.min);
    EXPECT_EQ(merged.max, whole.max);
    EXPECT_NEAR(merged.mean, whole.mean, 1e-11 + 1e-12 * std::abs(whole.mean));
    EXPECT_NEAR(merged.m2, whole.m2, 1e-8 + 1e-8 * whole.m2);
    EXPECT_NEAR(merged.variance(), whole.variance(),
                1e-9 + 1e-8 * whole.variance());
  }

  // Merging with an empty summary is the identity, both ways.
  stats::MomentSummary empty;
  stats::MomentSummary copy = whole;
  copy.merge(empty);
  EXPECT_EQ(copy.count, whole.count);
  EXPECT_EQ(copy.mean, whole.mean);
  empty.merge(whole);
  EXPECT_EQ(empty.count, whole.count);
  EXPECT_EQ(empty.max, whole.max);
}

TEST(PrefixMoments, AggregatedVarianceMatchesNaiveIncludingRaggedLevels) {
  const auto xs = random_series(1000, 77);
  const stats::PrefixMoments pm(xs);
  for (std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{7}, std::size_t{64}, std::size_t{333}}) {
    const auto agg = timeseries::aggregate(xs, m);
    const auto fssd = static_cast<double>(ld_ssd(agg, 0, agg.size()));
    const double naive = fssd / static_cast<double>(agg.size());
    EXPECT_NEAR(pm.aggregated_variance(m), naive, 1e-10 + 1e-9 * naive)
        << "m=" << m;
  }
}

// ---------------------------------------------------------------------------
// Vectorized block kernels.

TEST(BlockKernels, BlockMeansMatchNaive) {
  const auto xs = random_series(257, 88);
  for (std::size_t m : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{4}, std::size_t{5}, std::size_t{8},
                        std::size_t{16}, std::size_t{100}}) {
    const std::size_t blocks = xs.size() / m;
    std::vector<double> out(blocks);
    stats::block_means(std::span<const double>(xs).first(blocks * m), m, out);
    for (std::size_t k = 0; k < blocks; ++k) {
      const double naive = static_cast<double>(
          ld_sum(xs, k * m, (k + 1) * m) / static_cast<long double>(m));
      EXPECT_NEAR(out[k], naive, 1e-12 + 1e-13 * std::abs(naive))
          << "m=" << m << " k=" << k;
    }
  }
}

TEST(BlockKernels, BlockVariancesMatchNaiveAndClamp) {
  auto xs = random_series(240, 99);
  for (std::size_t t = 24; t < 32; ++t) xs[t] = 3.0;  // one constant block
  const std::size_t m = 8;
  const std::size_t blocks = xs.size() / m;
  std::vector<double> out(blocks);
  stats::block_variances(xs, m, out);
  for (std::size_t k = 0; k < blocks; ++k) {
    const double naive = static_cast<double>(
        ld_ssd(xs, k * m, (k + 1) * m) / static_cast<long double>(m));
    EXPECT_NEAR(out[k], naive, 1e-12 + 1e-10 * naive);
    EXPECT_GE(out[k], 0.0);
  }
  EXPECT_EQ(out[3], 0.0);  // xs[24..32) is exactly constant
}

TEST(BlockKernels, MinmaxPrefixWalkMatchesNaive) {
  const auto xs = random_series(301, 111);
  const stats::PrefixMoments pm(xs);
  const auto cum = pm.centered_cumsum();
  support::Rng rng(17);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t start = rng.below(xs.size() - 2);
    const std::size_t size = 1 + rng.below(xs.size() - start - 1);
    const double base = cum[start];
    const double step = (cum[start + size] - base) / static_cast<double>(size);
    double lo = 0.0, hi = 0.0;
    stats::minmax_prefix_walk(cum.subspan(start + 1, size), base, step, lo, hi);
    double nlo = 0.0, nhi = 0.0;
    for (std::size_t k = 0; k < size; ++k) {
      const double w =
          cum[start + 1 + k] - base - static_cast<double>(k + 1) * step;
      nlo = std::min(nlo, w);
      nhi = std::max(nhi, w);
    }
    EXPECT_DOUBLE_EQ(lo, nlo);
    EXPECT_DOUBLE_EQ(hi, nhi);
  }
}

// ---------------------------------------------------------------------------
// Aggregation pyramid.

TEST(AggregationPyramid, LevelsMatchAggregateIncludingRaggedAndNonDividing) {
  const auto xs = random_series(1000, 123);
  const std::vector<std::size_t> levels = {1, 2, 3, 4, 6, 7, 8,
                                           12, 24, 100, 101, 333};
  const timeseries::AggregationPyramid pyr(xs, levels);
  for (std::size_t m : levels) {
    const auto got = pyr.level(m);
    const auto want = timeseries::aggregate(xs, m);
    ASSERT_EQ(got.size(), want.size()) << "m=" << m;
    for (std::size_t k = 0; k < want.size(); ++k)
      EXPECT_NEAR(got[k], want[k], 1e-12 + 1e-12 * std::abs(want[k]))
          << "m=" << m << " k=" << k;
  }
}

TEST(AggregationPyramid, LevelOneAliasesTheInput) {
  const auto xs = random_series(64, 7);
  const std::vector<std::size_t> levels = {1, 4};
  const timeseries::AggregationPyramid pyr(xs, levels);
  EXPECT_EQ(pyr.level(1).data(), xs.data());
  EXPECT_EQ(pyr.level(1).size(), xs.size());
}

TEST(AggregationPyramid, DedupsSortsAndDropsZeros) {
  const auto xs = random_series(100, 8);
  const std::vector<std::size_t> levels = {10, 0, 2, 10, 5};
  const timeseries::AggregationPyramid pyr(xs, levels);
  const std::vector<std::size_t> want = {2, 5, 10};
  EXPECT_EQ(pyr.levels(), want);
}

TEST(AggregationPyramid, SharedPmDoesNotChangeBits) {
  // The cascade/PM routing depends only on (n, levels), so passing an
  // external PrefixMoments must reproduce every level bit for bit.
  const auto xs = random_series(997, 9);
  const std::vector<std::size_t> levels = {2, 5, 9, 18, 31, 62};
  const stats::PrefixMoments pm(xs);
  const timeseries::AggregationPyramid with_pm(xs, levels, &pm);
  const timeseries::AggregationPyramid without(xs, levels);
  for (std::size_t m : levels) {
    const auto a = with_pm.level(m);
    const auto b = without.level(m);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k)
      ASSERT_EQ(bits(a[k]), bits(b[k])) << "m=" << m << " k=" << k;
  }
}

// ---------------------------------------------------------------------------
// Deterministic exp/log kernels.

TEST(Vecmath, ExpMatchesStdOverWideRange) {
  support::Rng rng(31);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform(-700.0, 700.0);
    const double want = std::exp(x);
    const double got = stats::vm_exp(x);
    EXPECT_NEAR(got, want, 1e-13 * want) << "x=" << x;
  }
}

TEST(Vecmath, ExpEdgeCases) {
  EXPECT_TRUE(std::isnan(stats::vm_exp(std::nan(""))));
  EXPECT_EQ(stats::vm_exp(1000.0), HUGE_VAL);
  EXPECT_EQ(stats::vm_exp(-1000.0), 0.0);
  EXPECT_EQ(stats::vm_exp(0.0), 1.0);
  EXPECT_TRUE(std::isfinite(stats::vm_exp(709.0)));
  EXPECT_GT(stats::vm_exp(-708.0), 0.0);
}

TEST(Vecmath, LogMatchesStdOverWideRange) {
  support::Rng rng(32);
  for (int i = 0; i < 4000; ++i) {
    const double x = std::exp(rng.uniform(-690.0, 690.0));
    const double want = std::log(x);
    const double got = stats::vm_log(x);
    EXPECT_NEAR(got, want, 1e-13 + 1e-14 * std::abs(want)) << "x=" << x;
  }
  // Near 1, where log cancels.
  for (int i = 0; i < 1000; ++i) {
    const double x = 1.0 + rng.uniform(-0.4, 0.4);
    EXPECT_NEAR(stats::vm_log(x), std::log(x), 1e-15) << "x=" << x;
  }
}

TEST(Vecmath, LogFallbackMatchesStdOnNonNormals) {
  EXPECT_EQ(stats::vm_log(0.0), std::log(0.0));  // -inf
  EXPECT_TRUE(std::isnan(stats::vm_log(-1.0)));
  const double denormal = 1e-310;
  EXPECT_EQ(stats::vm_log(denormal), std::log(denormal));
  EXPECT_EQ(stats::vm_log(HUGE_VAL), std::log(HUGE_VAL));
}

TEST(Vecmath, BatchFormsMatchScalarAndAllowInPlace) {
  const auto xs = random_series(97, 41, 2.0);  // positive-ish inputs
  std::vector<double> pos(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) pos[i] = std::abs(xs[i]) + 0.1;
  std::vector<double> out(pos.size());
  stats::log_batch(pos, out);
  for (std::size_t i = 0; i < pos.size(); ++i)
    EXPECT_EQ(bits(out[i]), bits(stats::vm_log(pos[i])));
  std::vector<double> inplace = pos;
  stats::log10_batch(inplace, inplace);
  for (std::size_t i = 0; i < pos.size(); ++i)
    EXPECT_NEAR(inplace[i], std::log10(pos[i]), 1e-13);
  std::vector<double> eout(pos.size());
  stats::exp_batch(pos, eout);
  for (std::size_t i = 0; i < pos.size(); ++i)
    EXPECT_EQ(bits(eout[i]), bits(stats::vm_exp(pos[i])));
}

// ---------------------------------------------------------------------------
// Whittle aliasing-sum interpolation.

TEST(WhittleAlias, ChebyshevMatchesExactSum) {
  for (double h : {0.05, 0.3, 0.55, 0.7, 0.8, 0.95}) {
    const lrd::detail::AliasChebyshev cheb(h);
    for (int i = 0; i <= 200; ++i) {
      const double lambda =
          static_cast<double>(i) / 200.0 * 3.141592653589793;
      const double want = lrd::detail::fgn_alias_sum(lambda, h);
      EXPECT_NEAR(cheb(lambda), want, 1e-10 * std::abs(want) + 1e-14)
          << "h=" << h << " lambda=" << lambda;
    }
  }
}

TEST(WhittleAlias, BatchMatchesScalar) {
  const lrd::detail::AliasChebyshev cheb(0.8);
  std::vector<double> lambda;
  for (int i = 1; i <= 37; ++i)
    lambda.push_back(static_cast<double>(i) / 37.0 * 3.14159);
  std::vector<double> out(lambda.size());
  cheb.eval_batch(lambda, out);
  for (std::size_t i = 0; i < lambda.size(); ++i)
    EXPECT_EQ(bits(out[i]), bits(cheb(lambda[i])));
}

// ---------------------------------------------------------------------------
// Estimator equivalence: ported implementations vs their pre-port algorithms.

std::vector<double> fgn(std::size_t n, double h, std::uint64_t seed) {
  support::Rng rng(seed);
  auto r = timeseries::generate_fgn(n, h, 1.0, rng);
  EXPECT_TRUE(r.ok());
  return r.ok() ? r.value() : std::vector<double>{};
}

TEST(SharedEstimators, VarianceTimeMatchesNaiveReimplementation) {
  const auto xs = fgn(4096, 0.8, 1);
  const lrd::VarianceTimeOptions options;
  const auto levels =
      timeseries::log_spaced_levels(xs.size(), options.levels, options.min_blocks);
  std::vector<double> lm, lv;
  for (std::size_t m : levels) {
    const auto agg = timeseries::aggregate(xs, m);
    const double v = static_cast<double>(
        ld_ssd(agg, 0, agg.size()) / static_cast<long double>(agg.size()));
    if (!(v > 0.0)) continue;
    lm.push_back(std::log10(static_cast<double>(m)));
    lv.push_back(std::log10(v));
  }
  const auto fit = stats::ols(lm, lv);
  const double naive_h = 1.0 + fit.slope / 2.0;
  const auto est = lrd::variance_time_hurst(xs, options);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().h, naive_h, 1e-8);
}

double naive_rs_statistic(std::span<const double> block) {
  const std::size_t n = block.size();
  double mean = 0.0;
  for (double x : block) mean += x;
  mean /= static_cast<double>(n);
  double ss = 0.0;
  for (double x : block) ss += (x - mean) * (x - mean);
  const double s = std::sqrt(ss / static_cast<double>(n));
  if (!(s > 0.0)) return 0.0;
  double w = 0.0, w_min = 0.0, w_max = 0.0;
  for (double x : block) {
    w += x - mean;
    w_min = std::min(w_min, w);
    w_max = std::max(w_max, w);
  }
  return (w_max - w_min) / s;
}

TEST(SharedEstimators, RsMatchesNaiveReimplementation) {
  const auto xs = fgn(4096, 0.75, 2);
  const lrd::RsOptions options;
  // Reproduce the clamped size grid, then the naive per-block statistic.
  const std::size_t lo_sz = options.min_block_size;
  const std::size_t hi_sz = std::max(lo_sz, xs.size() / options.min_blocks);
  std::vector<std::size_t> sizes;
  for (std::size_t i = 0; i < options.levels; ++i) {
    const double frac = static_cast<double>(i) /
                        static_cast<double>(options.levels - 1);
    const auto raw = static_cast<std::size_t>(std::lround(
        static_cast<double>(lo_sz) *
        std::pow(static_cast<double>(hi_sz) / static_cast<double>(lo_sz),
                 frac)));
    const std::size_t sz = std::clamp(raw, lo_sz, hi_sz);
    if (sizes.empty() || sizes.back() != sz) sizes.push_back(sz);
  }
  std::vector<double> ln, lr;
  for (std::size_t size : sizes) {
    const std::size_t blocks = xs.size() / size;
    double sum = 0.0;
    std::size_t used = 0;
    for (std::size_t b = 0; b < blocks; ++b) {
      const double rs = naive_rs_statistic(
          std::span<const double>(xs).subspan(b * size, size));
      if (rs > 0.0) {
        sum += rs;
        ++used;
      }
    }
    if (used == 0) continue;
    ln.push_back(std::log10(static_cast<double>(size)));
    lr.push_back(std::log10(sum / static_cast<double>(used)));
  }
  const auto fit = stats::ols(ln, lr);
  const auto est = lrd::rs_hurst(xs, options);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().h, fit.slope, 1e-8);
}

double naive_kpss_level_statistic(std::span<const double> xs) {
  const std::size_t n = xs.size();
  const long double mean = ld_sum(xs, 0, n) / static_cast<long double>(n);
  std::vector<long double> e(n);
  for (std::size_t t = 0; t < n; ++t)
    e[t] = static_cast<long double>(xs[t]) - mean;
  long double run = 0.0L, num = 0.0L;
  for (std::size_t t = 0; t < n; ++t) {
    run += e[t];
    num += run * run;
  }
  const auto nn = static_cast<long double>(n);
  num /= nn * nn;
  const auto l = static_cast<std::size_t>(std::floor(
      12.0 * std::pow(static_cast<double>(n) / 100.0, 0.25)));
  long double s2 = 0.0L;
  for (std::size_t t = 0; t < n; ++t) s2 += e[t] * e[t];
  s2 /= nn;
  for (std::size_t s = 1; s <= l; ++s) {
    long double gamma = 0.0L;
    for (std::size_t t = s; t < n; ++t) gamma += e[t] * e[t - s];
    const long double w =
        1.0L - static_cast<long double>(s) / static_cast<long double>(l + 1);
    s2 += 2.0L * w * gamma / nn;
  }
  return static_cast<double>(num / s2);
}

TEST(SharedEstimators, KpssMatchesLongDoubleReference) {
  const auto xs = fgn(2000, 0.7, 3);
  const auto r = stats::kpss_test(xs, stats::KpssNull::kLevel);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value().statistic, naive_kpss_level_statistic(xs),
              1e-9 * naive_kpss_level_statistic(xs));
}

// Satellite regression: compensated demean under a mean >> fluctuations.
TEST(SharedEstimators, KpssSurvivesLargeMeanOffset) {
  auto xs = fgn(800, 0.7, 4);
  const double base_stat = naive_kpss_level_statistic(xs);
  for (auto& x : xs) x += 4.0e8;
  const auto r = stats::kpss_test(xs, stats::KpssNull::kLevel);
  ASSERT_TRUE(r.ok());
  // The statistic is shift-invariant in exact arithmetic; the long-double
  // reference on the *offset* series is itself accurate to ~1e-10 here.
  EXPECT_NEAR(r.value().statistic, naive_kpss_level_statistic(xs),
              1e-6 * base_stat);
  EXPECT_NEAR(r.value().statistic, base_stat, 1e-5 * base_stat);
}

TEST(SharedEstimators, RsAndVarianceTimeAreShiftInvariant) {
  auto xs = fgn(4096, 0.8, 5);
  const auto rs0 = lrd::rs_hurst(xs);
  const auto vt0 = lrd::variance_time_hurst(xs);
  ASSERT_TRUE(rs0.ok());
  ASSERT_TRUE(vt0.ok());
  for (auto& x : xs) x += 1.0e9;
  const auto rs1 = lrd::rs_hurst(xs);
  const auto vt1 = lrd::variance_time_hurst(xs);
  ASSERT_TRUE(rs1.ok());
  ASSERT_TRUE(vt1.ok());
  EXPECT_NEAR(rs1.value().h, rs0.value().h, 1e-6);
  EXPECT_NEAR(vt1.value().h, vt0.value().h, 1e-6);
}

TEST(SharedEstimators, AggregatedVariancesMatchNaive) {
  const auto xs = random_series(2048, 13);
  const std::vector<std::size_t> levels = {1, 2, 5, 10, 20, 50, 100};
  const auto got = timeseries::aggregated_variances(xs, levels);
  ASSERT_EQ(got.size(), levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const auto agg = timeseries::aggregate(xs, levels[i]);
    const double want = static_cast<double>(
        ld_ssd(agg, 0, agg.size()) / static_cast<long double>(agg.size()));
    EXPECT_NEAR(got[i], want, 1e-10 + 1e-9 * want);
  }
}

// ---------------------------------------------------------------------------
// rs_plot block-size grid hardening.

TEST(RsPlotGrid, TinySeriesErrorsInsteadOfCrashing) {
  const auto xs = random_series(64, 14);
  const auto plot = lrd::rs_plot(xs);  // hi == lo == 16: one usable size
  EXPECT_FALSE(plot.ok());
}

TEST(RsPlotGrid, SingleLevelErrorsInsteadOfCrashing) {
  const auto xs = random_series(4096, 15);
  lrd::RsOptions options;
  options.levels = 1;
  const auto plot = lrd::rs_plot(xs, options);
  EXPECT_FALSE(plot.ok());
}

TEST(RsPlotGrid, SizesStayWithinClampedRange) {
  const auto xs = random_series(1024, 16);
  lrd::RsOptions options;
  options.levels = 50;  // dense grid: unclamped lround would overshoot hi
  const auto plot = lrd::rs_plot(xs, options);
  ASSERT_TRUE(plot.ok());
  for (double l : plot.value().log10_n) {
    const double size = std::pow(10.0, l);
    EXPECT_GE(size, static_cast<double>(options.min_block_size) - 0.5);
    EXPECT_LE(size, static_cast<double>(xs.size() / options.min_blocks) + 0.5);
  }
}

// ---------------------------------------------------------------------------
// Suite sharing: shared-input results identical to standalone estimators,
// and bit-identical across executor widths.

TEST(SuiteSharing, SuiteMatchesStandaloneEstimatorsBitForBit) {
  const auto xs = fgn(5000, 0.8, 6);  // non-pow2: exercises the shared
                                      // truncated periodogram
  support::Executor ex(1);
  lrd::HurstSuiteOptions options;
  options.executor = &ex;
  const auto suite = lrd::hurst_suite(xs, options);

  const auto vt = lrd::variance_time_hurst(xs, options.variance_time);
  const auto rs = lrd::rs_hurst(xs, options.rs);
  const auto pg = lrd::periodogram_hurst(xs, options.periodogram);
  const auto wh = lrd::whittle_hurst(xs, options.whittle);
  const auto av = lrd::abry_veitch_hurst(xs, options.abry_veitch);
  ASSERT_TRUE(vt.ok() && rs.ok() && pg.ok() && wh.ok() && av.ok());

  const auto* svt = suite.find(lrd::HurstMethod::kVarianceTime);
  const auto* srs = suite.find(lrd::HurstMethod::kRoverS);
  const auto* spg = suite.find(lrd::HurstMethod::kPeriodogram);
  const auto* swh = suite.find(lrd::HurstMethod::kWhittle);
  const auto* sav = suite.find(lrd::HurstMethod::kAbryVeitch);
  ASSERT_NE(svt, nullptr);
  ASSERT_NE(srs, nullptr);
  ASSERT_NE(spg, nullptr);
  ASSERT_NE(swh, nullptr);
  ASSERT_NE(sav, nullptr);
  EXPECT_EQ(bits(svt->h), bits(vt.value().h));
  EXPECT_EQ(bits(srs->h), bits(rs.value().h));
  EXPECT_EQ(bits(spg->h), bits(pg.value().h));
  EXPECT_EQ(bits(swh->h), bits(wh.value().estimate.h));
  EXPECT_EQ(bits(sav->h), bits(av.value().estimate.h));
}

TEST(SuiteSharing, SuiteBitIdenticalAcrossExecutorWidths) {
  const auto xs = fgn(8192, 0.8, 7);
  support::Executor serial(1);
  support::Executor wide(8);
  lrd::HurstSuiteOptions a;
  a.executor = &serial;
  lrd::HurstSuiteOptions b;
  b.executor = &wide;
  const auto ra = lrd::hurst_suite(xs, a);
  const auto rb = lrd::hurst_suite(xs, b);
  ASSERT_EQ(ra.estimates.size(), rb.estimates.size());
  ASSERT_EQ(ra.estimates.size(), 5U);
  for (std::size_t i = 0; i < ra.estimates.size(); ++i) {
    EXPECT_EQ(ra.estimates[i].method, rb.estimates[i].method);
    EXPECT_EQ(bits(ra.estimates[i].h), bits(rb.estimates[i].h));
    const auto& ca = ra.estimates[i].ci95_halfwidth;
    const auto& cb = rb.estimates[i].ci95_halfwidth;
    ASSERT_EQ(ca.has_value(), cb.has_value());
    if (ca) EXPECT_EQ(bits(*ca), bits(*cb));
  }
}

TEST(SuiteSharing, SweepBitIdenticalAcrossExecutorWidthsAndOverloads) {
  const auto xs = fgn(8192, 0.8, 8);
  const std::vector<std::size_t> levels = {1, 2, 4, 8, 16};
  support::Executor serial(1);
  support::Executor wide(8);
  lrd::HurstSuiteOptions a;
  a.executor = &serial;
  lrd::HurstSuiteOptions b;
  b.executor = &wide;
  const auto ra = lrd::aggregated_hurst_sweep(
      xs, lrd::HurstMethod::kVarianceTime, levels, a);
  const auto rb = lrd::aggregated_hurst_sweep(
      xs, lrd::HurstMethod::kVarianceTime, levels, b);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].m, rb[i].m);
    EXPECT_EQ(bits(ra[i].estimate.h), bits(rb[i].estimate.h));
  }
  // The pyramid overload (shared across sweeps) must agree with the span
  // overload for the same sorted level set.
  const timeseries::AggregationPyramid pyr(xs, levels);
  const auto rc = lrd::aggregated_hurst_sweep(
      pyr, lrd::HurstMethod::kVarianceTime, a);
  ASSERT_EQ(rc.size(), ra.size());
  for (std::size_t i = 0; i < ra.size(); ++i)
    EXPECT_EQ(bits(rc[i].estimate.h), bits(ra[i].estimate.h));
}

}  // namespace
}  // namespace fullweb
