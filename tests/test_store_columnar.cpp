// Columnar store: bit-identical round-trip and strict corruption rejection.
#include "store/columnar.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "support/rng.h"
#include "synth/generator.h"
#include "synth/profile.h"
#include "weblog/dataset.h"

namespace {

using fullweb::store::kColumnarMagic;
using fullweb::weblog::Dataset;
using fullweb::weblog::Request;
using fullweb::weblog::Session;

std::string temp_path(const std::string& tag) {
  return "/tmp/fullweb_columnar_" + tag + ".fwc";
}

/// Bitwise double equality: NaN-safe and distinguishes -0.0 from +0.0,
/// which operator== would not.
bool same_bits(double a, double b) {
  std::uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

void expect_bit_identical(const Dataset& a, const Dataset& b) {
  EXPECT_EQ(a.name(), b.name());
  EXPECT_TRUE(same_bits(a.t0(), b.t0()));
  EXPECT_TRUE(same_bits(a.t1(), b.t1()));
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  EXPECT_EQ(a.distinct_clients(), b.distinct_clients());
  ASSERT_EQ(a.requests().size(), b.requests().size());
  for (std::size_t i = 0; i < a.requests().size(); ++i) {
    const Request& ra = a.requests()[i];
    const Request& rb = b.requests()[i];
    ASSERT_TRUE(same_bits(ra.time, rb.time)) << "request " << i;
    ASSERT_EQ(ra.client, rb.client) << "request " << i;
    ASSERT_EQ(ra.status, rb.status) << "request " << i;
    ASSERT_EQ(ra.bytes, rb.bytes) << "request " << i;
  }
  ASSERT_EQ(a.sessions().size(), b.sessions().size());
  for (std::size_t i = 0; i < a.sessions().size(); ++i) {
    const Session& sa = a.sessions()[i];
    const Session& sb = b.sessions()[i];
    ASSERT_TRUE(same_bits(sa.start, sb.start)) << "session " << i;
    ASSERT_TRUE(same_bits(sa.end, sb.end)) << "session " << i;
    ASSERT_EQ(sa.client, sb.client) << "session " << i;
    ASSERT_EQ(sa.requests, sb.requests) << "session " << i;
    ASSERT_EQ(sa.bytes, sb.bytes) << "session " << i;
  }
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

TEST(StoreColumnar, RoundTripsSyntheticWorkloadBitIdentically) {
  fullweb::support::Rng rng(20260808);
  fullweb::synth::GeneratorOptions opt;
  opt.duration = 6.0 * 3600.0;
  opt.scale = 0.05;
  auto ds = fullweb::synth::generate_dataset(
      fullweb::synth::ServerProfile::csee(), opt, rng);
  ASSERT_TRUE(ds.ok()) << ds.error().message;

  const std::string path = temp_path("synth");
  auto written = ds.value().to_columnar(path);
  ASSERT_TRUE(written.ok()) << written.error().message;
  EXPECT_GT(written.value(), 0u);

  auto back = Dataset::from_columnar(path);
  ASSERT_TRUE(back.ok()) << back.error().message;
  expect_bit_identical(ds.value(), back.value());
  std::remove(path.c_str());
}

TEST(StoreColumnar, RoundTripsAdversarialValuesBitIdentically) {
  // Exercises the order-preserving key transform and varint widths:
  // negative and fractional times, sub-second spacing, zero and huge byte
  // counts, many distinct statuses, client-id extremes.
  fullweb::support::Rng rng(99);
  std::vector<Request> reqs;
  double t = -12345.678;
  const std::uint16_t statuses[] = {0, 200, 204, 301, 304, 403, 404,
                                    500, 503, 599, 65535};
  for (int i = 0; i < 4000; ++i) {
    Request r;
    r.time = t;
    t += rng.uniform() < 0.3 ? 0.0 : rng.uniform() * 2.5;
    r.client = (i % 17 == 0) ? 0xffffffffu : static_cast<std::uint32_t>(i % 97);
    r.status = statuses[static_cast<std::size_t>(i) % std::size(statuses)];
    r.bytes = (i % 13 == 0) ? 0
              : (i % 29 == 0)
                  ? 0xffffffffffffull
                  : static_cast<std::uint64_t>(rng.uniform() * 1.0e6);
    reqs.push_back(r);
  }
  auto ds = Dataset::from_requests("edge/случай", std::move(reqs));
  ASSERT_TRUE(ds.ok()) << ds.error().message;

  const std::string path = temp_path("edge");
  auto written = ds.value().to_columnar(path);
  ASSERT_TRUE(written.ok()) << written.error().message;

  auto back = Dataset::from_columnar(path);
  ASSERT_TRUE(back.ok()) << back.error().message;
  expect_bit_identical(ds.value(), back.value());

  // The read path must feed analyses identically: spot-check a derived
  // series rather than only the raw tables.
  EXPECT_EQ(ds.value().requests_per_second(),
            back.value().requests_per_second());
  EXPECT_EQ(ds.value().session_lengths(), back.value().session_lengths());
  std::remove(path.c_str());
}

TEST(StoreColumnar, CompressesSortedSecondQuantizedTimes) {
  // Seconds-quantized epoch timestamps must cost far less than raw f64:
  // the delta+varint column is the point of the format.
  fullweb::support::Rng rng(7);
  std::vector<Request> reqs;
  double t = 1073865600.0;
  for (int i = 0; i < 20000; ++i) {
    t += static_cast<double>(rng.uniform() < 0.7 ? 0 : 1 + (i % 3));
    reqs.push_back(Request{t, static_cast<std::uint32_t>(i % 400), 200,
                           static_cast<std::uint64_t>(500 + i % 9000)});
  }
  auto ds = Dataset::from_requests("quantized", std::move(reqs));
  ASSERT_TRUE(ds.ok());

  const std::string path = temp_path("quant");
  auto info = fullweb::store::write_columnar(ds.value(), path);
  ASSERT_TRUE(info.ok()) << info.error().message;
  for (const auto& col : info.value().columns) {
    if (col.name == "req_time")
      EXPECT_LT(col.payload_bytes, 20000u * 3u)
          << "delta+varint should beat 8 bytes/timestamp by far";
  }
  auto back = fullweb::store::read_columnar(path);
  ASSERT_TRUE(back.ok()) << back.error().message;
  expect_bit_identical(ds.value(), back.value());
  std::remove(path.c_str());
}

class StoreColumnarCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    fullweb::support::Rng rng(5);
    std::vector<Request> reqs;
    for (int i = 0; i < 300; ++i)
      reqs.push_back(Request{1000.0 + i, static_cast<std::uint32_t>(i % 7),
                             static_cast<std::uint16_t>(i % 2 ? 200 : 404),
                             static_cast<std::uint64_t>(10 + i)});
    auto ds = Dataset::from_requests("corrupt-me", std::move(reqs));
    ASSERT_TRUE(ds.ok());
    path_ = temp_path("corrupt");
    ASSERT_TRUE(ds.value().to_columnar(path_).ok());
    bytes_ = slurp(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void expect_rejected(const std::vector<std::uint8_t>& tampered,
                       const std::string& what) {
    dump(path_, tampered);
    auto r = Dataset::from_columnar(path_);
    ASSERT_FALSE(r.ok()) << "accepted " << what;
    EXPECT_EQ(r.error().category, "parse") << what;
  }

  std::string path_;
  std::vector<std::uint8_t> bytes_;
};

TEST_F(StoreColumnarCorruption, RejectsBadMagic) {
  auto b = bytes_;
  b[0] ^= 0xff;
  expect_rejected(b, "bad magic");
}

TEST_F(StoreColumnarCorruption, RejectsUnsupportedVersion) {
  auto b = bytes_;
  b[4] = 99;  // version field
  expect_rejected(b, "future version");
}

TEST_F(StoreColumnarCorruption, RejectsTruncationAtEveryBoundary) {
  for (std::size_t keep :
       {std::size_t{3}, std::size_t{17}, std::size_t{63}, bytes_.size() / 2,
        bytes_.size() - 1}) {
    std::vector<std::uint8_t> b(bytes_.begin(),
                                bytes_.begin() + static_cast<long>(keep));
    expect_rejected(b, "truncation to " + std::to_string(keep));
  }
}

TEST_F(StoreColumnarCorruption, RejectsTamperedTotals) {
  auto b = bytes_;
  b[40] ^= 0x01;  // total_bytes (offset 4+4+8+8+8+8)
  expect_rejected(b, "tampered total_bytes");

  b = bytes_;
  b[48] ^= 0x01;  // distinct_clients
  expect_rejected(b, "tampered distinct_clients");
}

TEST_F(StoreColumnarCorruption, RejectsUnknownColumnId) {
  auto b = bytes_;
  // First column block starts right after the 64-byte fixed header plus
  // the name ("corrupt-me" = 10 bytes).
  const std::size_t first_block = 64 + 10;
  ASSERT_LT(first_block + 4, b.size());
  b[first_block] = 42;
  expect_rejected(b, "unknown column id");
}

TEST_F(StoreColumnarCorruption, RejectsTrailingGarbage) {
  auto b = bytes_;
  b.push_back(0xab);
  expect_rejected(b, "trailing garbage");
}

TEST_F(StoreColumnarCorruption, MissingFileIsIoError) {
  auto r = Dataset::from_columnar("/tmp/fullweb_columnar_does_not_exist.fwc");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().category, "io");
}

TEST(StoreColumnar, ExtensionHeuristic) {
  EXPECT_TRUE(fullweb::store::has_columnar_extension("a/b/server1.fwc"));
  EXPECT_FALSE(fullweb::store::has_columnar_extension("a/b/server1.log"));
  EXPECT_FALSE(fullweb::store::has_columnar_extension(".fwc"));
  EXPECT_FALSE(fullweb::store::has_columnar_extension("fwc"));
}

}  // namespace
