#include "support/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/rng.h"

namespace fullweb::support {
namespace {

TEST(Executor, SerialRunsInlineOnCallingThread) {
  Executor ex(1);
  EXPECT_TRUE(ex.serial());
  EXPECT_EQ(ex.threads(), 1U);
  const auto caller = std::this_thread::get_id();
  auto future = ex.async([&] { return std::this_thread::get_id(); });
  EXPECT_EQ(future.get(), caller);
}

TEST(Executor, ZeroMeansHardwareConcurrency) {
  Executor ex(0);
  EXPECT_GE(ex.threads(), 1U);
}

TEST(Executor, AsyncReturnsValue) {
  Executor ex(4);
  auto future = ex.async([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(Executor, AsyncVoidCompletes) {
  Executor ex(4);
  std::atomic<int> hits{0};
  auto future = ex.async([&] { ++hits; });
  future.get();
  EXPECT_EQ(hits.load(), 1);
}

TEST(Executor, AsyncPropagatesException) {
  Executor ex(4);
  auto future = ex.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ParallelFor, EmptyRangeRunsNothing) {
  Executor ex(4);
  std::atomic<int> hits{0};
  ex.parallel_for(0, 0, [&](std::size_t) { ++hits; });
  ex.parallel_for(7, 7, [&](std::size_t) { ++hits; });
  ex.parallel_for(9, 3, [&](std::size_t) { ++hits; });  // begin > end
  EXPECT_EQ(hits.load(), 0);
}

TEST(ParallelFor, SingleItem) {
  Executor ex(4);
  std::vector<int> seen;
  ex.parallel_for(5, 6, [&](std::size_t i) {
    seen.push_back(static_cast<int>(i));
  });
  ASSERT_EQ(seen.size(), 1U);
  EXPECT_EQ(seen[0], 5);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  Executor ex(4);
  constexpr std::size_t n = 10000;
  std::vector<std::atomic<int>> counts(n);
  ex.parallel_for(0, n, [&](std::size_t i) { counts[i]++; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ParallelFor, ExceptionPropagatesAndExecutorSurvives) {
  Executor ex(4);
  EXPECT_THROW(
      ex.parallel_for(0, 1000,
                      [&](std::size_t i) {
                        if (i == 137) throw std::runtime_error("bad index");
                      }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> hits{0};
  ex.parallel_for(0, 100, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 100);
}

TEST(ParallelFor, SerialExceptionPropagates) {
  Executor ex(1);
  EXPECT_THROW(ex.parallel_for(0, 10,
                               [&](std::size_t i) {
                                 if (i == 3) throw std::logic_error("x");
                               }),
               std::logic_error);
}

TEST(ParallelFor, GrainOneCoversEveryIndexExactlyOnce) {
  // grain = 1 is the Monte-Carlo fan-out shape: one task per index so the
  // work-stealing deque balances uneven replicate costs.
  Executor ex(4);
  constexpr std::size_t n = 512;
  std::vector<std::atomic<int>> counts(n);
  ex.parallel_for(3, n, [&](std::size_t i) { counts[i]++; }, 1);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(counts[i].load(), 0) << i;
  for (std::size_t i = 3; i < n; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ParallelFor, ExplicitGrainChunksContiguously) {
  // Each chunk must be a contiguous [lo, lo + grain) run: bodies that slice
  // shared output buffers by chunk depend on it. Record, per index, the
  // thread that ran it and check indices sharing a grain-sized block never
  // interleave with a different block mid-chunk (every chunk observes
  // strictly ascending indices via a per-chunk counter).
  Executor ex(4);
  constexpr std::size_t n = 1000;
  constexpr std::size_t grain = 64;
  std::vector<std::atomic<int>> counts(n);
  std::atomic<int> out_of_order{0};
  thread_local std::size_t last_index;
  ex.parallel_for(0, n,
                  [&](std::size_t i) {
                    counts[i]++;
                    // Within one chunk the same thread runs i, i+1, ... in
                    // order; a chunk boundary resets via the modulus check.
                    if (i % grain != 0 && last_index + 1 != i)
                      ++out_of_order;
                    last_index = i;
                  },
                  grain);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
  EXPECT_EQ(out_of_order.load(), 0);
}

TEST(ParallelFor, GrainLargerThanRangeRunsSerially) {
  Executor ex(4);
  std::vector<int> seen;  // unsynchronized: single chunk = single thread
  ex.parallel_for(0, 10, [&](std::size_t i) {
    seen.push_back(static_cast<int>(i));
  }, 1000);
  ASSERT_EQ(seen.size(), 10U);
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], static_cast<int>(i));
}

TEST(ParallelFor, GrainOneExceptionStillPropagates) {
  Executor ex(4);
  EXPECT_THROW(
      ex.parallel_for(0, 256,
                      [&](std::size_t i) {
                        if (i == 200) throw std::runtime_error("replicate");
                      },
                      1),
      std::runtime_error);
  std::atomic<int> hits{0};
  ex.parallel_for(0, 64, [&](std::size_t) { ++hits; }, 1);
  EXPECT_EQ(hits.load(), 64);
}

TEST(ParallelFor, NestedDoesNotDeadlock) {
  Executor ex(2);  // small pool: waiting threads must help, not sleep
  std::atomic<int> hits{0};
  ex.parallel_for(0, 8, [&](std::size_t) {
    ex.parallel_for(0, 64, [&](std::size_t) { ++hits; }, 4);
  });
  EXPECT_EQ(hits.load(), 8 * 64);
}

TEST(TaskGroup, WaitsForAllTasks) {
  Executor ex(4);
  std::atomic<int> hits{0};
  TaskGroup group(ex);
  for (int i = 0; i < 64; ++i) group.run([&] { ++hits; });
  group.wait();
  EXPECT_EQ(hits.load(), 64);
}

TEST(TaskGroup, RethrowsFirstException) {
  Executor ex(4);
  TaskGroup group(ex);
  group.run([] {});
  group.run([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(TaskGroup, SerialExecutorRunsEagerly) {
  Executor ex(1);
  int order = 0;
  TaskGroup group(ex);
  group.run([&] { EXPECT_EQ(order++, 0); });
  group.run([&] { EXPECT_EQ(order++, 1); });
  group.wait();
  EXPECT_EQ(order, 2);
}

TEST(Executor, ManySmallTasksStress) {
  Executor ex(4);
  std::atomic<std::uint64_t> sum{0};
  TaskGroup group(ex);
  for (std::uint64_t i = 0; i < 5000; ++i) group.run([&sum, i] { sum += i; });
  group.wait();
  EXPECT_EQ(sum.load(), 5000ULL * 4999ULL / 2ULL);
}

/// The determinism contract the pipeline relies on: per-index substreams
/// make a parallel reduction bit-identical to the serial one.
TEST(Executor, SubstreamedWorkIsThreadCountInvariant) {
  constexpr std::size_t n = 256;
  auto run = [&](std::size_t threads) {
    Executor ex(threads);
    Rng base(2026);
    std::vector<Rng> streams;
    streams.reserve(n);
    RngSplitter splitter(base);
    for (std::size_t i = 0; i < n; ++i) streams.push_back(splitter.stream(i));
    std::vector<double> out(n);
    ex.parallel_for(0, n, [&](std::size_t i) {
      double acc = 0.0;
      for (int k = 0; k < 100; ++k) acc += streams[i].normal();
      out[i] = acc;
    });
    return out;
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << i;  // bitwise, not approximate
  }
}

TEST(Executor, GlobalPoolResizes) {
  Executor::set_global_threads(3);
  EXPECT_EQ(Executor::global().threads(), 3U);
  EXPECT_EQ(&Executor::resolve(nullptr), &Executor::global());
  Executor local(2);
  EXPECT_EQ(&Executor::resolve(&local), &local);
  Executor::set_global_threads(0);  // back to hardware default
}

TEST(Executor, SetGlobalThreadsRefusesWhileBusy) {
  Executor::set_global_threads(2);  // ensure pool mode (not serial inline)
  std::atomic<bool> release{false};
  auto pending = Executor::global().async([&] {
    while (!release.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  // Replacing the pool now would dangle the reference the task runs on.
  EXPECT_THROW(Executor::set_global_threads(4), std::logic_error);
  release.store(true);
  pending.get();
  // Idle again (set_global_threads absorbs the wrapper wind-down window).
  EXPECT_NO_THROW(Executor::set_global_threads(0));
}

}  // namespace
}  // namespace fullweb::support
