// Corpus test for the CLF parser: a reference table of real-world log
// quirks — escaped quotes, missing fields, invalid dates, negative
// offsets, "-" bytes, Combined trailers — each pinned to parse-vs-reject
// and, on rejection, to the reason class. Plus randomized round-trip
// through to_clf_line covering request-line escaping.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "support/rng.h"
#include "weblog/clf.h"

namespace fullweb::weblog {
namespace {

struct LineCase {
  const char* line;
  bool ok;
  ClfParseReason reason;  // kNone when ok
  const char* note;
};

const char* kTs = "[12/Jan/2004:08:30:00 +0000]";

std::string with_ts(const std::string& rest) {
  return "host - - " + std::string(kTs) + " " + rest;
}

TEST(ClfCorpus, LineReferenceTable) {
  const std::vector<LineCase> cases = {
      // --- well-formed variants ---
      {"127.0.0.1 - frank [10/Oct/2000:13:55:36 -0700] \"GET /apache_pb.gif "
       "HTTP/1.0\" 200 2326",
       true, ClfParseReason::kNone, "canonical Apache example"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /x HTTP/1.0\" 304 -", true,
       ClfParseReason::kNone, "dash bytes"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"-\" 408 -", true,
       ClfParseReason::kNone, "empty request line"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200 1", true,
       ClfParseReason::kNone, "HTTP/0.9, no protocol"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /a HTTP/1.1\" 200 5 "
       "\"http://r.example/\" \"Mozilla/4.08\"",
       true, ClfParseReason::kNone, "Combined trailers ignored"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /a HTTP/1.1\" 200 5 \"-\" "
       "\"Mozilla/5.0 (X11; \\\"quoted\\\" agent)\"",
       true, ClfParseReason::kNone, "escaped quotes in the user agent"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /say\\\"hi\\\" HTTP/1.0\" "
       "200 7",
       true, ClfParseReason::kNone, "escaped quote inside the request"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /a\\\\b HTTP/1.0\" 200 7",
       true, ClfParseReason::kNone, "escaped backslash inside the request"},
      {"h - - [31/Dec/1999:23:59:59 +0000] \"GET / HTTP/1.0\" 200 1", true,
       ClfParseReason::kNone, "end of 1999"},
      {"h - - [29/Feb/2004:12:00:00 +0000] \"GET / HTTP/1.0\" 200 1", true,
       ClfParseReason::kNone, "leap day on a leap year"},
      {"h - - [31/Dec/2005:23:59:60 -0730] \"GET / HTTP/1.0\" 200 1", true,
       ClfParseReason::kNone, "leap second + negative half-hour offset"},
      {"h - - [12/Jan/2004:08:30:00 +1400] \"GET / HTTP/1.0\" 200 1", true,
       ClfParseReason::kNone, "maximal real offset"},
      {"user_4711 - - [12/Apr/2004:10:00:00 +0000] \"GET /doc.pdf HTTP/1.1\" "
       "200 9999",
       true, ClfParseReason::kNone, "sanitized opaque client id"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /big HTTP/1.0\" 200 "
       "4294967296",
       true, ClfParseReason::kNone, "response larger than 4 GiB"},

      // --- structurally broken ---
      {"", false, ClfParseReason::kMissingFields, "empty line"},
      {"onlyhost", false, ClfParseReason::kMissingFields, "one token"},
      {"h - -", false, ClfParseReason::kMissingFields, "stops before stamp"},
      {"h - - not-a-timestamp \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "unbracketed timestamp"},
      {"h - - [12/Jan/2004:08:30:00 +0000 \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "unterminated bracket"},
      {"h - - [12/Jan/2004:08:30:00 +0000] 200 1", false,
       ClfParseReason::kBadRequest, "request field missing"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"unterminated 200 1", false,
       ClfParseReason::kBadRequest, "unterminated request"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /trap\\\" 200 1", false,
       ClfParseReason::kBadRequest,
       "escaped final quote must NOT close the field"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" xx 1", false,
       ClfParseReason::kBadStatus, "non-numeric status"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" -5 1", false,
       ClfParseReason::kBadStatus, "negative status"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 9999999 1", false,
       ClfParseReason::kBadStatus, "status wildly out of range"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 99 1", false,
       ClfParseReason::kBadStatus, "status below 100"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 600 1", false,
       ClfParseReason::kBadStatus, "status above 599"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 0200 1", false,
       ClfParseReason::kBadStatus, "zero-padded 4-digit status"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 100 1", true,
       ClfParseReason::kNone, "lowest valid status"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 599 1", true,
       ClfParseReason::kNone, "highest valid status"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200", false,
       ClfParseReason::kBadBytes, "bytes field missing"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200 -5", false,
       ClfParseReason::kBadBytes, "negative bytes"},
      {"h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200 12x4", false,
       ClfParseReason::kBadBytes, "trailing junk in bytes"},

      // --- out-of-range timestamp fields (previously silently wrapped) ---
      {"h - - [32/Jan/2004:08:30:00 +0000] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "day 32"},
      {"h - - [00/Jan/2004:08:30:00 +0000] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "day 0"},
      {"h - - [31/Apr/2004:08:30:00 +0000] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "April 31st"},
      {"h - - [29/Feb/2003:08:30:00 +0000] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "leap day on a non-leap year"},
      {"h - - [29/Feb/1900:08:30:00 +0000] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "1900 is not a leap year"},
      {"h - - [12/Jan/2004:25:30:00 +0000] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "hour 25"},
      {"h - - [12/Jan/2004:08:61:00 +0000] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "minute 61"},
      {"h - - [12/Jan/2004:08:30:61 +0000] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "second 61"},
      {"h - - [12/Jan/2004:08:30:00 +9999] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "offset 99:99"},
      {"h - - [12/Jan/2004:08:30:00 -9900] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "offset -99:00"},
      {"h - - [12/Jxx/2004:08:30:00 +0000] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "bad month abbreviation"},
      {"h - - [aa/Jan/2004:08:30:00 +0000] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "non-numeric day"},

      // --- truncated / malformed timezone offsets (previously accepted) ---
      {"h - - [12/Jan/2004:08:30:00 +05] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "truncated offset +05"},
      {"h - - [12/Jan/2004:08:30:00 +000] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "truncated offset +000"},
      {"h - - [12/Jan/2004:08:30:00+0000] \"GET /\" 200 1", false,
       ClfParseReason::kBadTimestamp, "offset glued to seconds"},
      {"h - - [12/Jan/2004:08:30:00] \"GET /\" 200 1", true,
       ClfParseReason::kNone, "offset omitted entirely stays legal"},
  };

  for (const auto& c : cases) {
    ClfParseReason reason = ClfParseReason::kNone;
    const auto e = parse_clf_line(c.line, &reason);
    EXPECT_EQ(e.ok(), c.ok) << c.note << ": " << c.line;
    EXPECT_EQ(reason, c.reason) << c.note << ": " << c.line;
  }
}

TEST(ClfCorpus, EscapedQuoteRequestContentRecovered) {
  const auto e = parse_clf_line(with_ts("\"GET /say\\\"hi\\\".html HTTP/1.0\" 200 7"));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value().method, "GET");
  EXPECT_EQ(e.value().path, "/say\"hi\".html");  // unescaped
  EXPECT_EQ(e.value().protocol, "HTTP/1.0");
  EXPECT_EQ(e.value().status, 200);

  const auto b = parse_clf_line(with_ts("\"GET /a\\\\b HTTP/1.0\" 200 7"));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b.value().path, "/a\\b");

  // Unknown escape pairs are preserved verbatim (Apache \t, \xhh, ...).
  const auto t = parse_clf_line(with_ts("\"GET /a\\tb HTTP/1.0\" 200 7"));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value().path, "/a\\tb");
}

TEST(ClfCorpus, TimestampReferenceTable) {
  const struct {
    const char* text;
    bool ok;
  } cases[] = {
      {"[28/Aug/1995:00:00:00 +0000]", true},
      {"[29/Feb/2000:00:00:00 +0000]", true},   // 400-year leap rule
      {"[31/Jan/2004:23:59:59 +0000]", true},
      {"[30/Apr/2004:00:00:00 +0000]", true},
      {"[01/Jan/0001:00:00:00 +0000]", true},   // far past still civil
      {"[12/Jan/2004:08:30:00 -1459]", true},   // extreme but legal offset
      {"[12/Jan/2004:08:30:00]", true},         // offset optional
      {"[12/Jan/2004:08:30 +00]", false},       // too short
      {"[29/Feb/2100:00:00:00 +0000]", false},  // 2100 is not a leap year
      {"[31/Jun/2004:00:00:00 +0000]", false},
      {"[31/Sep/2004:00:00:00 +0000]", false},
      {"[31/Nov/2004:00:00:00 +0000]", false},
      {"[12/Jan/2004:24:00:00 +0000]", false},
      {"[12/Jan/2004:08:60:00 +0000]", false},
      {"[12/Jan/2004:08:30:00 +1500]", false},  // beyond any real zone
      {"[12/Jan/2004:08:30:00 +0060]", false},  // offset minute 60
      {"[12/Jan/2004:08:30:00 +05]", false},    // truncated offset (len 24)
      {"[12/Jan/2004:08:30:00 +]", false},      // truncated offset (len 22)
      {"[12/Jan/2004:08:30:00 +000]", false},   // truncated offset (len 25)
      {"[12/Jan/2004:08:30:00+0000]", false},   // missing separator space
      {"[12/Jan/2004:08:30:00 ~0000]", false},  // bad offset sign
      {"[12/Jan/2004:08:30:00 +00a0]", false},  // non-digit offset minutes
      {"[12-Jan-2004]", false},
      {"", false},
  };
  for (const auto& c : cases)
    EXPECT_EQ(parse_clf_timestamp(c.text).ok(), c.ok) << c.text;
}

TEST(ClfCorpus, RejectedOutOfRangeNeverWrapsSilently) {
  // The old parser accepted day 32 and wrapped it into February — the two
  // stamps below would have parsed 86400 s apart. Both must now reject.
  EXPECT_FALSE(parse_clf_timestamp("[32/Jan/2004:00:00:00 +0000]").ok());
  EXPECT_FALSE(parse_clf_timestamp("[33/Jan/2004:00:00:00 +0000]").ok());
}

TEST(ClfCorpus, RandomizedRoundTripWithHostileRequestStrings) {
  // Paths drawn from a hostile alphabet (quotes, backslashes, percent
  // escapes) must round-trip exactly: parse(to_clf_line(e)) == e.
  const std::string alphabet = "abc/._-%20\"\\";
  support::Rng rng(77);
  for (int trial = 0; trial < 500; ++trial) {
    LogEntry e;
    e.timestamp = 1073865600.0 + std::floor(rng.uniform(0.0, 7 * 86400.0));
    e.client = "10.0." + std::to_string(rng.below(256)) + "." +
               std::to_string(rng.below(256));
    e.method = rng.below(2) == 0 ? "GET" : "POST";
    std::string path = "/";
    const auto len = rng.below(24);
    for (std::uint64_t i = 0; i < len; ++i)
      path.push_back(alphabet[static_cast<std::size_t>(rng.below(alphabet.size()))]);
    e.path = path;
    e.protocol = rng.below(4) == 0 ? "" : "HTTP/1.0";
    e.status = 200;
    e.bytes = rng.below(1 << 20);

    const std::string line = to_clf_line(e);
    const auto back = parse_clf_line(line);
    ASSERT_TRUE(back.ok()) << line;
    EXPECT_DOUBLE_EQ(back.value().timestamp, e.timestamp) << line;
    EXPECT_EQ(back.value().client, e.client) << line;
    EXPECT_EQ(back.value().method, e.method) << line;
    EXPECT_EQ(back.value().path, e.path) << line;
    EXPECT_EQ(back.value().protocol, e.protocol) << line;
    EXPECT_EQ(back.value().bytes, e.bytes) << line;
  }
}

}  // namespace
}  // namespace fullweb::weblog
