// Kolmogorov-Smirnov-style consistency between each distribution's sampler
// and its own CDF: whatever closed forms say, the samples must follow them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "stats/distributions.h"
#include "support/rng.h"

namespace fullweb::stats {
namespace {

/// One-sample KS statistic against a CDF.
double ks_statistic(std::vector<double> xs,
                    const std::function<double(double)>& cdf) {
  std::sort(xs.begin(), xs.end());
  const auto n = static_cast<double>(xs.size());
  double d = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double f = cdf(xs[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(f - lo), std::fabs(f - hi)});
  }
  return d;
}

/// 1% critical value for one-sample KS: 1.63 / sqrt(n).
double ks_critical(std::size_t n) {
  return 1.63 / std::sqrt(static_cast<double>(n));
}

constexpr std::size_t kN = 20000;

struct NamedCase {
  const char* name;
  std::function<double(support::Rng&)> sample;
  std::function<double(double)> cdf;
};

class SamplerMatchesCdf : public ::testing::TestWithParam<int> {};

const NamedCase& case_for(int index) {
  static const std::vector<NamedCase> kCases = [] {
    std::vector<NamedCase> cases;
    {
      Pareto d(1.5, 2.0);
      cases.push_back({"pareto_1.5_2",
                       [d](support::Rng& r) { return d.sample(r); },
                       [d](double x) { return d.cdf(x); }});
    }
    {
      Pareto d(0.8, 1.0);  // infinite-mean regime
      cases.push_back({"pareto_0.8_1",
                       [d](support::Rng& r) { return d.sample(r); },
                       [d](double x) { return d.cdf(x); }});
    }
    {
      Lognormal d(1.0, 1.3);
      cases.push_back({"lognormal_1_1.3",
                       [d](support::Rng& r) { return d.sample(r); },
                       [d](double x) { return d.cdf(x); }});
    }
    {
      Exponential d(0.4);
      cases.push_back({"exponential_0.4",
                       [d](support::Rng& r) { return d.sample(r); },
                       [d](double x) { return d.cdf(x); }});
    }
    {
      Weibull d(0.7, 3.0);
      cases.push_back({"weibull_0.7_3",
                       [d](support::Rng& r) { return d.sample(r); },
                       [d](double x) { return d.cdf(x); }});
    }
    {
      Weibull d(2.5, 1.0);
      cases.push_back({"weibull_2.5_1",
                       [d](support::Rng& r) { return d.sample(r); },
                       [d](double x) { return d.cdf(x); }});
    }
    return cases;
  }();
  return kCases[static_cast<std::size_t>(index)];
}

TEST_P(SamplerMatchesCdf, KsBelowOnePercentCritical) {
  const NamedCase& c = case_for(GetParam());
  support::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs(kN);
  for (auto& x : xs) x = c.sample(rng);
  const double d = ks_statistic(std::move(xs), c.cdf);
  EXPECT_LT(d, ks_critical(kN)) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, SamplerMatchesCdf,
                         ::testing::Range(0, 6));

TEST(SamplerMatchesCdf, NormalSamplerMatchesPhi) {
  support::Rng rng(7);
  std::vector<double> xs(kN);
  for (auto& x : xs) x = rng.normal();
  const double d = ks_statistic(std::move(xs), [](double x) {
    return normal_cdf(x);
  });
  EXPECT_LT(d, ks_critical(kN));
}

TEST(SamplerMatchesCdf, QuantileTransformMatchesUniform) {
  // Feeding uniforms through a quantile function must match the sampler's
  // distribution: checks quantile() against cdf() over the whole range.
  const Lognormal d(0.5, 0.9);
  support::Rng rng(8);
  std::vector<double> xs(kN);
  for (auto& x : xs) x = d.quantile(rng.uniform_pos());
  const double stat = ks_statistic(std::move(xs), [&](double x) {
    return d.cdf(x);
  });
  EXPECT_LT(stat, ks_critical(kN));
}

}  // namespace
}  // namespace fullweb::stats
