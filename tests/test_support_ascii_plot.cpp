#include "support/ascii_plot.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace fullweb::support {
namespace {

std::size_t count_char(const std::string& s, char c) {
  std::size_t n = 0;
  for (char x : s)
    if (x == c) ++n;
  return n;
}

TEST(AsciiPlot, RendersTitleAndLabels) {
  PlotOptions opts;
  opts.title = "My Title";
  opts.x_label = "time";
  opts.y_label = "value";
  const std::string out = render_plot({1, 2, 3}, {1, 4, 9}, opts);
  EXPECT_NE(out.find("My Title"), std::string::npos);
  EXPECT_NE(out.find("time"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
}

TEST(AsciiPlot, PointCountMatchesDistinctCells) {
  PlotOptions opts;
  opts.width = 60;
  opts.height = 20;
  const std::string out = render_plot({0, 1, 2, 3}, {0, 1, 2, 3}, opts);
  EXPECT_EQ(count_char(out, '*'), 4U);
}

TEST(AsciiPlot, EmptyInputProducesPlaceholder) {
  const std::string out = render_plot({}, {}, {});
  EXPECT_NE(out.find("no plottable points"), std::string::npos);
}

TEST(AsciiPlot, LogAxesDropNonPositive) {
  PlotOptions opts;
  opts.log_x = true;
  opts.log_y = true;
  const std::string out =
      render_plot({-1, 0, 10, 100}, {5, 5, 10, 100}, opts);
  // Only the two positive-x points survive.
  EXPECT_EQ(count_char(out, '*'), 2U);
}

TEST(AsciiPlot, AllPointsNonPositiveOnLogAxisPlaceholder) {
  PlotOptions opts;
  opts.log_y = true;
  const std::string out = render_plot({1, 2}, {-1, 0}, opts);
  EXPECT_NE(out.find("no plottable points"), std::string::npos);
}

TEST(AsciiPlot, MultiSeriesLegendAndGlyphs) {
  PlotSeries a{"alpha", {0, 1}, {0, 1}, 'a'};
  PlotSeries b{"beta", {0, 1}, {1, 0}, 'b'};
  const std::string out = render_plot({a, b}, {});
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_GE(count_char(out, 'a'), 2U);
  EXPECT_GE(count_char(out, 'b'), 2U);
}

TEST(AsciiPlot, NonFiniteValuesSkipped) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::string out = render_plot({1, 2, 3, 4}, {1, nan, inf, 4}, {});
  EXPECT_EQ(count_char(out, '*'), 2U);
}

TEST(AsciiPlot, ConstantSeriesDoesNotDivideByZero) {
  const std::string out = render_plot({1, 2, 3}, {5, 5, 5}, {});
  EXPECT_EQ(count_char(out, '*'), 3U);
}

TEST(AsciiPlot, AxisTicksShowDataRange) {
  const std::string out = render_plot({10, 20}, {100, 200}, {});
  EXPECT_NE(out.find("10"), std::string::npos);
  EXPECT_NE(out.find("20"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_NE(out.find("200"), std::string::npos);
}

TEST(AsciiPlot, MinimumDimensionsEnforced) {
  PlotOptions opts;
  opts.width = 1;
  opts.height = 1;
  const std::string out = render_plot({1, 2}, {1, 2}, opts);
  EXPECT_FALSE(out.empty());  // clamped to minimums, no crash
}

}  // namespace
}  // namespace fullweb::support
