#include "lrd/dfa.h"

#include <gtest/gtest.h>

#include <vector>

#include "lrd/estimator_suite.h"
#include "support/rng.h"
#include "timeseries/fgn.h"

namespace fullweb::lrd {
namespace {

std::vector<double> fgn(std::size_t n, double h, std::uint64_t seed) {
  support::Rng rng(seed);
  auto r = timeseries::generate_fgn(n, h, 1.0, rng);
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

class DfaRecoversHurst : public ::testing::TestWithParam<double> {};

TEST_P(DfaRecoversHurst, OnFgn) {
  const double h = GetParam();
  double sum = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto xs = fgn(1 << 15, h, 900 + rep * 17 +
                                        static_cast<std::uint64_t>(h * 100));
    const auto est = dfa_hurst(xs);
    ASSERT_TRUE(est.ok());
    sum += est.value().h;
  }
  EXPECT_NEAR(sum / 3.0, h, 0.08) << "H=" << h;
}

INSTANTIATE_TEST_SUITE_P(HurstValues, DfaRecoversHurst,
                         ::testing::Values(0.55, 0.65, 0.75, 0.85));

TEST(Dfa, MethodTagIsDfa) {
  const auto xs = fgn(1 << 12, 0.7, 1);
  const auto est = dfa_hurst(xs);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est.value().method, HurstMethod::kDfa);
  EXPECT_EQ(to_string(HurstMethod::kDfa), "DFA");
}

TEST(Dfa, InsensitiveToLinearTrend) {
  // DFA(1)'s defining property — and the reason it cross-checks the
  // paper's detrending methodology.
  auto xs = fgn(1 << 14, 0.7, 2);
  const auto clean = dfa_hurst(xs);
  ASSERT_TRUE(clean.ok());
  for (std::size_t t = 0; t < xs.size(); ++t)
    xs[t] += 5e-4 * static_cast<double>(t);  // ~8 sigma drift over window
  const auto trended = dfa_hurst(xs);
  ASSERT_TRUE(trended.ok());
  EXPECT_NEAR(clean.value().h, trended.value().h, 0.03);
}

TEST(Dfa, MeanShiftInvariant) {
  auto xs = fgn(1 << 13, 0.8, 3);
  const auto base = dfa_hurst(xs);
  for (auto& x : xs) x += 1e6;
  const auto shifted = dfa_hurst(xs);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(shifted.ok());
  EXPECT_NEAR(base.value().h, shifted.value().h, 1e-6);
}

TEST(Dfa, PlotIsMonotoneIncreasing) {
  // F(n) grows with box size for any H > 0.
  const auto xs = fgn(1 << 14, 0.6, 4);
  const auto plot = dfa_plot(xs);
  ASSERT_TRUE(plot.ok());
  ASSERT_GE(plot.value().log10_n.size(), 5U);
  for (std::size_t i = 1; i < plot.value().log10_f.size(); ++i)
    EXPECT_GT(plot.value().log10_f[i], plot.value().log10_f[i - 1] - 0.05);
}

TEST(Dfa, TooShortErrors) {
  const std::vector<double> xs(30, 1.0);
  EXPECT_FALSE(dfa_hurst(xs).ok());
}

TEST(Dfa, ConstantSeriesErrors) {
  const std::vector<double> xs(4096, 3.0);
  EXPECT_FALSE(dfa_hurst(xs).ok());
}

TEST(Dfa, WorksInAggregationSweep) {
  const auto xs = fgn(1 << 15, 0.75, 5);
  const std::vector<std::size_t> levels = {1, 4};
  const auto sweep = aggregated_hurst_sweep(xs, HurstMethod::kDfa, levels);
  ASSERT_EQ(sweep.size(), 2U);
  for (const auto& p : sweep) EXPECT_NEAR(p.estimate.h, 0.75, 0.12);
}

}  // namespace
}  // namespace fullweb::lrd
