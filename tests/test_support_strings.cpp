#include "support/strings.h"

#include <gtest/gtest.h>

namespace fullweb::support {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\t x \n"), "x");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Trim, EmptyAndAllWhitespace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   \t\n"), "");
}

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3U);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5U);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(Split, SingleToken) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1U);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("hello", "lo"));
  EXPECT_TRUE(ends_with("hello", "lo"));
  EXPECT_FALSE(ends_with("hello", "he"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(ParseInt, ValidInputs) {
  EXPECT_EQ(parse_int("42").value(), 42);
  EXPECT_EQ(parse_int("-7").value(), -7);
  EXPECT_EQ(parse_int("  123  ").value(), 123);
  EXPECT_EQ(parse_int("0").value(), 0);
}

TEST(ParseInt, RejectsJunk) {
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("1.5").has_value());
  EXPECT_FALSE(parse_int("-").has_value());
}

TEST(ParseDouble, ValidInputs) {
  EXPECT_DOUBLE_EQ(parse_double("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double(" 0.5 ").value(), 0.5);
}

TEST(ParseDouble, RejectsJunk) {
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.2.3").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(FormatSig, SignificantDigits) {
  EXPECT_EQ(format_sig(1.6789, 3), "1.68");
  EXPECT_EQ(format_sig(0.000123456, 3), "0.000123");
  EXPECT_EQ(format_sig(1234567.0, 4), "1.235e+06");
}

TEST(FormatSig, SpecialValues) {
  EXPECT_EQ(format_sig(std::numeric_limits<double>::quiet_NaN(), 3), "NaN");
  EXPECT_EQ(format_sig(std::numeric_limits<double>::infinity(), 3), "inf");
  EXPECT_EQ(format_sig(-std::numeric_limits<double>::infinity(), 3), "-inf");
}

TEST(WithCommas, GroupsThousands) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(15785164), "15,785,164");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(to_lower("HeLLo-123"), "hello-123");
}

}  // namespace
}  // namespace fullweb::support
