// Fleet shard-and-merge: thread-count bit-identity, merge equivalence
// against directly-pooled samples, and the RNG-advance contract.
#include "core/fleet.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "support/executor.h"
#include "support/rng.h"
#include "synth/generator.h"
#include "synth/profile.h"

namespace {

using fullweb::core::FleetOptions;
using fullweb::core::FleetReport;
using fullweb::core::analyze_fleet;
using fullweb::core::fleet_report_json;
using fullweb::stats::MomentSummary;
using fullweb::weblog::Dataset;

/// Trimmed fit options: every Monte-Carlo/optional branch off, so the
/// 8-shard fleet fits run in test time while still exercising the whole
/// shard fan-out, Hurst pipeline, and tail estimates.
FleetOptions fast_options(fullweb::support::Executor* ex) {
  FleetOptions opt;
  opt.executor = ex;
  opt.fit.run_poisson = false;
  opt.fit.run_error_analysis = false;
  opt.fit.arrivals.run_aggregation_sweep = false;
  opt.fit.arrivals.hurst.run_whittle = false;
  opt.fit.tails.run_curvature = false;
  return opt;
}

std::vector<Dataset> synthetic_fleet(std::size_t shards) {
  std::vector<Dataset> fleet;
  const auto profiles = fullweb::synth::ServerProfile::all_four();
  for (std::size_t i = 0; i < shards; ++i) {
    fullweb::support::Rng rng(1000 + i);
    fullweb::synth::GeneratorOptions opt;
    opt.duration = 3.0 * 3600.0;
    opt.scale = 0.5;
    opt.start_time = 1073865600.0 + static_cast<double>(i) * 4.0 * 3600.0;
    auto ds = fullweb::synth::generate_dataset(profiles[i % profiles.size()],
                                               opt, rng);
    EXPECT_TRUE(ds.ok()) << ds.error().message;
    fleet.push_back(std::move(ds).value());
  }
  return fleet;
}

TEST(CoreFleet, BitIdenticalReportAcrossThreadCounts) {
  const std::vector<Dataset> fleet = synthetic_fleet(8);

  fullweb::support::Executor serial(1);
  fullweb::support::Rng rng_serial(42);
  auto report_serial = analyze_fleet(fleet, rng_serial, fast_options(&serial));
  ASSERT_TRUE(report_serial.ok()) << report_serial.error().message;

  fullweb::support::Executor pool(8);
  fullweb::support::Rng rng_pool(42);
  auto report_pool = analyze_fleet(fleet, rng_pool, fast_options(&pool));
  ASSERT_TRUE(report_pool.ok()) << report_pool.error().message;

  // Byte-for-byte identical JSON is the strongest equality we can assert
  // without enumerating every nested field — it covers all of them.
  const std::string json_serial = fleet_report_json(report_serial.value());
  const std::string json_pool = fleet_report_json(report_pool.value());
  EXPECT_EQ(json_serial, json_pool);

  // Both runs must leave the caller's generator in the same state.
  EXPECT_EQ(rng_serial.uniform(), rng_pool.uniform());
}

TEST(CoreFleet, MergedStateMatchesDirectlyPooledSamples) {
  const std::vector<Dataset> fleet = synthetic_fleet(4);

  fullweb::support::Executor serial(1);
  fullweb::support::Rng rng(7);
  auto report = analyze_fleet(fleet, rng, fast_options(&serial));
  ASSERT_TRUE(report.ok()) << report.error().message;
  const FleetReport& r = report.value();

  // Exact totals.
  std::size_t requests = 0, sessions = 0;
  std::uint64_t bytes = 0;
  for (const Dataset& ds : fleet) {
    requests += ds.requests().size();
    sessions += ds.sessions().size();
    bytes += ds.total_bytes();
  }
  EXPECT_EQ(r.total_requests, requests);
  EXPECT_EQ(r.total_sessions, sessions);
  EXPECT_EQ(r.total_bytes, bytes);
  EXPECT_EQ(r.shards.size(), fleet.size());

  // The merged moment state must match a single summary over the pooled
  // union of every shard's samples: count/min/max exactly, mean/variance
  // to rounding (Chan et al. merge error is ulps-level here).
  const auto pooled = [&](auto&& extract) {
    std::vector<double> all;
    for (const Dataset& ds : fleet) {
      const std::vector<double> xs = extract(ds);
      all.insert(all.end(), xs.begin(), xs.end());
    }
    return MomentSummary::of(all);
  };
  const auto expect_merged = [](const MomentSummary& got,
                                const MomentSummary& want, const char* tag) {
    EXPECT_EQ(got.count, want.count) << tag;
    EXPECT_EQ(got.min, want.min) << tag;
    EXPECT_EQ(got.max, want.max) << tag;
    EXPECT_NEAR(got.mean, want.mean, 1e-9 * (1.0 + std::abs(want.mean)))
        << tag;
    const double scale = 1.0 + want.variance();
    EXPECT_NEAR(got.variance(), want.variance(), 1e-8 * scale) << tag;
  };
  expect_merged(r.rps,
                pooled([](const Dataset& d) { return d.requests_per_second(); }),
                "rps");
  expect_merged(r.session_length,
                pooled([](const Dataset& d) { return d.session_lengths(); }),
                "session_length");
  expect_merged(
      r.session_requests,
      pooled([](const Dataset& d) { return d.session_request_counts(); }),
      "session_requests");
  expect_merged(
      r.session_bytes,
      pooled([](const Dataset& d) { return d.session_byte_counts(); }),
      "session_bytes");

  // Window union and per-shard sanity.
  double t0 = fleet.front().t0(), t1 = fleet.front().t1();
  for (const Dataset& ds : fleet) {
    t0 = std::min(t0, ds.t0());
    t1 = std::max(t1, ds.t1());
  }
  EXPECT_EQ(r.t0, t0);
  EXPECT_EQ(r.t1, t1);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    EXPECT_EQ(r.shards[i].name, fleet[i].name());
    EXPECT_EQ(r.shards[i].requests, fleet[i].requests().size());
  }
  EXPECT_LE(r.shards_lrd_requests, fleet.size());
  EXPECT_GE(r.mean_request_h, 0.0);
}

TEST(CoreFleet, AdvancesCallerRngByOneRegionPerShard) {
  const std::vector<Dataset> fleet = synthetic_fleet(2);
  fullweb::support::Executor serial(1);
  fullweb::support::Rng rng(99);
  auto report = analyze_fleet(fleet, rng, fast_options(&serial));
  ASSERT_TRUE(report.ok());

  fullweb::support::Rng expected(99);
  expected.jump_pow2(224);
  expected.jump_pow2(224);
  EXPECT_EQ(rng.uniform(), expected.uniform());
}

TEST(CoreFleet, EmptyFleetIsAnError) {
  fullweb::support::Rng rng(1);
  auto report = analyze_fleet({}, rng, FleetOptions{});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().category, "insufficient_data");
}

}  // namespace
