// Streaming ingest subsystem: chunked parallel CLF reader, incremental
// sessionizer, and Dataset::from_clf_stream — pinned bit-identical to the
// batch path at every thread count, with memory bounded by open sessions.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/executor.h"
#include "support/rng.h"
#include "synth/generator.h"
#include "weblog/clf.h"
#include "weblog/clf_reader.h"
#include "weblog/dataset.h"
#include "weblog/merge.h"
#include "weblog/streaming_sessionizer.h"

namespace fullweb::weblog {
namespace {

bool same_request(const Request& a, const Request& b) {
  return a.time == b.time && a.client == b.client && a.status == b.status &&
         a.bytes == b.bytes;
}

bool same_session(const Session& a, const Session& b) {
  return a.client == b.client && a.start == b.start && a.end == b.end &&
         a.requests == b.requests && a.bytes == b.bytes;
}

/// Datasets must agree field-for-field (bit-identical tables).
void expect_identical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.requests().size(), b.requests().size());
  for (std::size_t i = 0; i < a.requests().size(); ++i)
    ASSERT_TRUE(same_request(a.requests()[i], b.requests()[i])) << "request " << i;
  ASSERT_EQ(a.sessions().size(), b.sessions().size());
  for (std::size_t i = 0; i < a.sessions().size(); ++i)
    ASSERT_TRUE(same_session(a.sessions()[i], b.sessions()[i])) << "session " << i;
  EXPECT_DOUBLE_EQ(a.t0(), b.t0());
  EXPECT_DOUBLE_EQ(a.t1(), b.t1());
  EXPECT_EQ(a.total_bytes(), b.total_bytes());
  EXPECT_EQ(a.distinct_clients(), b.distinct_clients());
}

class StreamingIngestTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : files_) std::remove(p.c_str());
  }

  std::string write_file(const std::string& name,
                         const std::vector<std::string>& lines,
                         const char* eol = "\n") {
    const std::string path = "/tmp/fullweb_stream_" + name + ".log";
    std::ofstream os(path, std::ios::binary);
    for (const auto& l : lines) os << l << eol;
    files_.push_back(path);
    return path;
  }

  /// A quarter-day of synthetic ClarkNet traffic rendered as CLF text.
  std::string write_synthetic(const std::string& name, double duration,
                              double scale) {
    support::Rng rng(42);
    synth::GeneratorOptions gen;
    gen.duration = duration;
    gen.scale = scale;
    auto workload =
        synth::generate_workload(synth::ServerProfile::clarknet(), gen, rng);
    EXPECT_TRUE(workload.ok());
    support::Rng rng2(43);
    std::vector<std::string> lines;
    for (const auto& e : synth::to_log_entries(workload.value(), rng2))
      lines.push_back(to_clf_line(e));
    return write_file(name, lines);
  }

  std::vector<std::string> files_;
};

TEST_F(StreamingIngestTest, ReaderDeliversFileOrderAtAnyThreadCount) {
  const std::string path = write_synthetic("order", 4 * 3600.0, 0.1);

  auto read_all = [&](std::size_t threads, std::size_t chunk) {
    support::Executor ex(threads);
    ClfReaderOptions opts;
    opts.chunk_bytes = chunk;
    opts.executor = &ex;
    std::vector<LogEntry> entries;
    auto stats = read_clf_file(path, opts,
                               [&](LogEntry&& e) { entries.push_back(std::move(e)); });
    EXPECT_TRUE(stats.ok());
    EXPECT_GT(stats.value().chunks, 1U);
    EXPECT_EQ(stats.value().parsed, entries.size());
    return entries;
  };

  const auto serial = read_all(1, 4096);
  const auto parallel = read_all(8, 4096);
  const auto parallel_big = read_all(8, 64 * 1024);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), parallel_big.size());
  ASSERT_GT(serial.size(), 100U);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].client, parallel[i].client) << i;
    ASSERT_EQ(serial[i].timestamp, parallel[i].timestamp) << i;
    ASSERT_EQ(serial[i].bytes, parallel[i].bytes) << i;
    ASSERT_EQ(serial[i].client, parallel_big[i].client) << i;
  }
}

TEST_F(StreamingIngestTest, FromClfStreamBitIdenticalToBatch) {
  const std::string path = write_synthetic("bitident", 6 * 3600.0, 0.15);

  // Batch reference: parse the file in order, then from_entries.
  std::ifstream is(path);
  std::vector<LogEntry> entries;
  parse_clf_stream(is, [&](LogEntry&& e) { entries.push_back(std::move(e)); });
  auto batch = Dataset::from_entries("batch", entries);
  ASSERT_TRUE(batch.ok());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    support::Executor ex(threads);
    StreamIngestOptions opts;
    opts.reader.chunk_bytes = 8 * 1024;  // force many chunks
    opts.reader.executor = &ex;
    StreamIngestReport report;
    const std::vector<std::string> paths = {path};
    auto stream = Dataset::from_clf_stream("stream", paths, opts, &report);
    ASSERT_TRUE(stream.ok()) << "threads=" << threads;
    EXPECT_TRUE(report.sessionized_incrementally);
    expect_identical(batch.value(), stream.value());
  }
}

TEST_F(StreamingIngestTest, TraceLargerThanChunkBudgetStaysBounded) {
  // 4000 requests, but clients arrive one after another and go idle: with a
  // 60 s threshold at most 2 sessions are ever open, so the sessionizer's
  // working set must stay O(open sessions) even though the trace is orders
  // of magnitude larger than one chunk.
  std::vector<std::string> lines;
  LogEntry e;
  e.method = "GET";
  e.path = "/x";
  e.protocol = "HTTP/1.0";
  e.status = 200;
  e.bytes = 10;
  for (int c = 0; c < 400; ++c) {
    e.client = "client" + std::to_string(c);
    for (int i = 0; i < 10; ++i) {
      e.timestamp = 1073865600.0 + c * 100.0 + i * 5.0;
      lines.push_back(to_clf_line(e));
    }
  }
  const std::string path = write_file("bounded", lines);

  StreamIngestOptions opts;
  opts.sessionizer.threshold_seconds = 60.0;
  opts.reader.chunk_bytes = 4096;  // file is ~300 KB >> one chunk
  StreamIngestReport report;
  const std::vector<std::string> paths = {path};
  auto ds = Dataset::from_clf_stream("bounded", paths, opts, &report);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(report.files.size(), 1U);
  EXPECT_GT(report.files[0].chunks, 10U);
  EXPECT_EQ(report.files[0].parsed, 4000U);
  EXPECT_EQ(ds.value().sessions().size(), 400U);
  EXPECT_TRUE(report.sessionized_incrementally);
  // The bounded-memory claim: the trace exceeds the chunk budget many times
  // over, yet at most two sessions (handover between consecutive clients)
  // were ever simultaneously open.
  EXPECT_LE(report.peak_open_sessions, 2U);
}

TEST_F(StreamingIngestTest, MalformedLinesCountedByReason) {
  const std::string good =
      "10.0.0.1 - - [12/Jan/2004:08:30:00 +0000] \"GET /a HTTP/1.0\" 200 1";
  const std::string path = write_file(
      "reasons",
      {
          good,
          "short",                                                        // missing fields
          "h - - not-a-stamp \"GET /\" 200 1",                            // bad timestamp
          "h - - [32/Jan/2004:08:30:00 +0000] \"GET /\" 200 1",           // out of range
          "h - - [12/Jan/2004:08:30:00 +0000] \"unterminated 200 1",      // bad request
          "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" xx 1",            // bad status
          "h - - [12/Jan/2004:08:30:00 +0000] \"GET /\" 200 -7",          // bad bytes
          good,
      });

  ClfReaderOptions opts;
  std::size_t delivered = 0;
  auto stats = read_clf_file(path, opts, [&](LogEntry&&) { ++delivered; });
  ASSERT_TRUE(stats.ok());
  const IngestStats& s = stats.value();
  EXPECT_EQ(delivered, 2U);
  EXPECT_EQ(s.parsed, 2U);
  EXPECT_EQ(s.lines, 8U);
  EXPECT_EQ(s.malformed, 6U);
  auto count = [&](ClfParseReason r) {
    return s.malformed_by_reason[static_cast<std::size_t>(r)];
  };
  EXPECT_EQ(count(ClfParseReason::kMissingFields), 1U);
  EXPECT_EQ(count(ClfParseReason::kBadTimestamp), 2U);
  EXPECT_EQ(count(ClfParseReason::kBadRequest), 1U);
  EXPECT_EQ(count(ClfParseReason::kBadStatus), 1U);
  EXPECT_EQ(count(ClfParseReason::kBadBytes), 1U);
  EXPECT_FALSE(s.summary().empty());
}

TEST_F(StreamingIngestTest, UnsortedInputFallsBackToBatchSessionization) {
  LogEntry e;
  e.method = "GET";
  e.path = "/";
  e.status = 200;
  e.bytes = 1;
  std::vector<std::string> lines;
  for (const double t : {100.0, 40.0, 70.0, 10.0, 130.0}) {
    e.client = "c" + std::to_string(static_cast<int>(t) % 2);
    e.timestamp = 1073865600.0 + t;
    lines.push_back(to_clf_line(e));
  }
  const std::string path = write_file("unsorted", lines);

  StreamIngestReport report;
  const std::vector<std::string> paths = {path};
  auto stream = Dataset::from_clf_stream("s", paths, {}, &report);
  ASSERT_TRUE(stream.ok());
  EXPECT_FALSE(report.sessionized_incrementally);

  std::ifstream is(path);
  std::vector<LogEntry> entries;
  parse_clf_stream(is, [&](LogEntry&& ent) { entries.push_back(std::move(ent)); });
  auto batch = Dataset::from_entries("b", entries);
  ASSERT_TRUE(batch.ok());
  expect_identical(batch.value(), stream.value());
}

TEST_F(StreamingIngestTest, OpenFailureRecordedPerFile) {
  const std::string good = write_synthetic("openfail", 3600.0, 0.1);
  const std::vector<std::string> paths = {"/nonexistent/dir/a.log", good};
  StreamIngestReport report;
  auto ds = Dataset::from_clf_stream("open", paths, {}, &report);
  ASSERT_TRUE(ds.ok());  // one readable file suffices
  ASSERT_EQ(report.files.size(), 2U);
  EXPECT_TRUE(report.files[0].open_failed);
  EXPECT_EQ(report.files[0].parsed, 0U);
  EXPECT_FALSE(report.files[1].open_failed);
  EXPECT_GT(report.files[1].parsed, 0U);

  const std::vector<std::string> all_bad = {"/nope/x.log", "/nope/y.log"};
  EXPECT_FALSE(Dataset::from_clf_stream("none", all_bad).ok());
}

TEST_F(StreamingIngestTest, MultiFileConcatenationMatchesSequentialBatch) {
  const std::string a = write_synthetic("multi_a", 2 * 3600.0, 0.1);
  // Second file continues after the first (replica merge is merge_clf_files'
  // job; the stream path is the concatenation contract).
  std::ifstream ia(a);
  std::vector<LogEntry> entries;
  parse_clf_stream(ia, [&](LogEntry&& e) { entries.push_back(std::move(e)); });
  double last = entries.back().timestamp;
  std::vector<std::string> lines;
  LogEntry e;
  e.method = "GET";
  e.path = "/tail";
  e.status = 200;
  e.bytes = 77;
  for (int i = 0; i < 500; ++i) {
    e.client = "late" + std::to_string(i % 7);
    e.timestamp = last + 10.0 + i;
    lines.push_back(to_clf_line(e));
    entries.push_back(e);
  }
  const std::string b = write_file("multi_b", lines);

  auto batch = Dataset::from_entries("batch", entries);
  ASSERT_TRUE(batch.ok());
  support::Executor ex(4);
  StreamIngestOptions opts;
  opts.reader.chunk_bytes = 8 * 1024;
  opts.reader.executor = &ex;
  StreamIngestReport report;
  const std::vector<std::string> paths = {a, b};
  auto stream = Dataset::from_clf_stream("stream", paths, opts, &report);
  ASSERT_TRUE(stream.ok());
  ASSERT_EQ(report.files.size(), 2U);
  expect_identical(batch.value(), stream.value());
}

TEST_F(StreamingIngestTest, MissingTrailingNewlineAndCrlfHandled) {
  const std::string line1 =
      "10.0.0.1 - - [12/Jan/2004:08:30:00 +0000] \"GET /a HTTP/1.0\" 200 1";
  const std::string line2 =
      "10.0.0.2 - - [12/Jan/2004:08:30:05 +0000] \"GET /b HTTP/1.0\" 200 2";
  const std::string path = "/tmp/fullweb_stream_nonl.log";
  {
    std::ofstream os(path, std::ios::binary);
    os << line1 << "\r\n" << line2;  // CRLF + no trailing newline
  }
  files_.push_back(path);

  std::vector<LogEntry> entries;
  auto stats = read_clf_file(path, {},
                             [&](LogEntry&& e) { entries.push_back(std::move(e)); });
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().parsed, 2U);
  EXPECT_EQ(stats.value().malformed, 0U);
  ASSERT_EQ(entries.size(), 2U);
  EXPECT_EQ(entries[1].bytes, 2U);
}

// ---------------------------------------------------------------------------
// StreamingSessionizer unit behavior.

Request req(double time, std::uint32_t client, std::uint64_t bytes = 100) {
  Request r;
  r.time = time;
  r.client = client;
  r.bytes = bytes;
  return r;
}

TEST(StreamingSessionizer, MatchesBatchOnRandomizedSortedTraces) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    for (const double threshold : {30.0, 300.0, 1800.0}) {
      support::Rng rng(seed);
      std::vector<Request> rs;
      for (int i = 0; i < 4000; ++i)
        rs.push_back(req(rng.uniform(0.0, 86400.0),
                         static_cast<std::uint32_t>(rng.below(150)),
                         rng.below(5000)));
      std::sort(rs.begin(), rs.end(),
                [](const Request& a, const Request& b) { return a.time < b.time; });

      SessionizerOptions opts;
      opts.threshold_seconds = threshold;
      const auto batch = sessionize(rs, opts);

      StreamingSessionizer ss(opts);
      for (const auto& r : rs) ss.add(r);
      EXPECT_FALSE(ss.saw_unsorted());
      EXPECT_LE(ss.peak_open_sessions(), 150U);
      const auto streamed = ss.finish();

      ASSERT_EQ(batch.size(), streamed.size())
          << "seed=" << seed << " threshold=" << threshold;
      for (std::size_t i = 0; i < batch.size(); ++i)
        ASSERT_TRUE(same_session(batch[i], streamed[i]))
            << "seed=" << seed << " threshold=" << threshold << " i=" << i;
    }
  }
}

TEST(StreamingSessionizer, TakeClosedDrainsWithoutChangingTheTable) {
  support::Rng rng(9);
  std::vector<Request> rs;
  for (int i = 0; i < 2000; ++i)
    rs.push_back(req(i * 10.0, static_cast<std::uint32_t>(rng.below(20))));

  SessionizerOptions opts;
  opts.threshold_seconds = 50.0;
  const auto batch = sessionize(rs, opts);

  StreamingSessionizer ss(opts);
  std::vector<Session> drained;
  for (std::size_t i = 0; i < rs.size(); ++i) {
    ss.add(rs[i]);
    if (i % 100 == 0) {
      for (auto& s : ss.take_closed()) drained.push_back(s);
      EXPECT_LE(ss.open_sessions(), 20U);
    }
  }
  for (auto& s : ss.finish()) drained.push_back(s);
  std::sort(drained.begin(), drained.end(), session_order);
  ASSERT_EQ(drained.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    ASSERT_TRUE(same_session(batch[i], drained[i])) << i;
}

TEST(StreamingSessionizer, FlagsOutOfOrderInput) {
  StreamingSessionizer ss;
  ss.add(req(100.0, 1));
  ss.add(req(100.0, 2));  // equal times are fine
  EXPECT_FALSE(ss.saw_unsorted());
  ss.add(req(50.0, 1));
  EXPECT_TRUE(ss.saw_unsorted());
}

TEST(StreamingSessionizer, PeakTracksSimultaneouslyOpenSessions) {
  SessionizerOptions opts;
  opts.threshold_seconds = 10.0;
  StreamingSessionizer ss(opts);
  for (std::uint32_t c = 0; c < 5; ++c) ss.add(req(0.0, c));
  EXPECT_EQ(ss.open_sessions(), 5U);
  ss.add(req(100.0, 99));  // everything idle-evicted, one new
  EXPECT_EQ(ss.open_sessions(), 1U);
  EXPECT_EQ(ss.peak_open_sessions(), 5U);
  const auto table = ss.finish();
  EXPECT_EQ(table.size(), 6U);
}

TEST(StreamingSessionizer, ResetPeakReportsPerWindowMaxima) {
  SessionizerOptions opts;
  opts.threshold_seconds = 10.0;
  StreamingSessionizer ss(opts);
  for (std::uint32_t c = 0; c < 4; ++c) ss.add(req(0.0, c));
  EXPECT_EQ(ss.peak_open_sessions(), 4U);

  // New window while all four are (lazily) expired: the first event evicts
  // them, so the carried-over-but-dead sessions never inflate the peak.
  ss.reset_peak();
  EXPECT_EQ(ss.peak_open_sessions(), 0U);
  ss.add(req(100.0, 9));
  EXPECT_EQ(ss.peak_open_sessions(), 1U);

  // New window while one session is genuinely still open: extending it
  // counts it toward the restarted peak even though no insert happens.
  ss.reset_peak();
  ss.add(req(105.0, 9));
  EXPECT_EQ(ss.peak_open_sessions(), 1U);
  (void)ss.finish();
}

// Regression: IngestStats.peak_open_sessions used to record the stream-wide
// *cumulative* high-water mark after each file; a quiet second file far in
// the future inherited the first file's peak.
TEST_F(StreamingIngestTest, PeakOpenSessionsIsPerFile) {
  // File A: five clients interleaved (peak 5). File B: one client, more
  // than a session threshold later (peak 1).
  std::vector<std::string> a_lines, b_lines;
  for (int burst = 0; burst < 3; ++burst)
    for (int c = 0; c < 5; ++c) {
      LogEntry e;
      e.timestamp = 1073865600.0 + burst * 60.0 + c;
      e.client = "10.0.0." + std::to_string(c);
      e.method = "GET";
      e.path = "/a";
      e.protocol = "HTTP/1.0";
      e.status = 200;
      e.bytes = 100;
      a_lines.push_back(to_clf_line(e));
    }
  for (int i = 0; i < 4; ++i) {
    LogEntry e;
    e.timestamp = 1073865600.0 + 10000.0 + i * 10.0;  // > 1800 s later
    e.client = "10.0.1.1";
    e.method = "GET";
    e.path = "/b";
    e.protocol = "HTTP/1.0";
    e.status = 200;
    e.bytes = 100;
    b_lines.push_back(to_clf_line(e));
  }
  const std::string file_a = write_file("peak_a", a_lines);
  const std::string file_b = write_file("peak_b", b_lines);

  const std::vector<std::string> paths = {file_a, file_b};
  StreamIngestReport report;
  auto ds = Dataset::from_clf_stream("peak", paths, {}, &report);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(report.files.size(), 2U);
  EXPECT_EQ(report.files[0].peak_open_sessions, 5U);
  EXPECT_EQ(report.files[1].peak_open_sessions, 1U);  // was 5 before the fix
  EXPECT_EQ(report.peak_open_sessions, 5U);  // stream-wide max unchanged
}

// IngestStats::summary(): the open-failed path must not format-and-discard,
// and the success path must name the file it summarizes.
TEST(IngestStatsSummary, IncludesPathAndEarlyReturnsOnOpenFailure) {
  IngestStats ok_stats;
  ok_stats.path = "/var/log/server/access.log";
  ok_stats.bytes = 1024;
  ok_stats.lines = 10;
  ok_stats.parsed = 9;
  ok_stats.malformed = 1;
  const std::string s = ok_stats.summary();
  EXPECT_NE(s.find("/var/log/server/access.log: "), std::string::npos);
  EXPECT_NE(s.find("parsed=9"), std::string::npos);

  IngestStats no_path;  // pathless stats still format cleanly
  no_path.parsed = 3;
  EXPECT_EQ(no_path.summary().find(": "), std::string::npos);

  IngestStats failed;
  failed.path = "/gone.log";
  failed.open_failed = true;
  EXPECT_EQ(failed.summary(), "/gone.log: OPEN FAILED");
}

// An on_entry callback that throws mid-drain must not abandon queued parse
// tasks: the reader's scope guard drains (discarding results) so the
// executor is quiescent and reusable after the exception escapes.
TEST_F(StreamingIngestTest, ThrowingCallbackLeavesExecutorReusable) {
  const std::string path = write_synthetic("throwing", 4 * 3600.0, 0.1);
  support::Executor ex(8);
  ClfReaderOptions opts;
  opts.chunk_bytes = 4096;  // many chunks => several futures in flight
  opts.executor = &ex;

  std::size_t clean_count = 0;
  auto clean = read_clf_file(path, opts,
                             [&](LogEntry&&) { ++clean_count; });
  ASSERT_TRUE(clean.ok());
  ASSERT_GT(clean.value().chunks, 4U);

  struct Boom : std::runtime_error {
    Boom() : std::runtime_error("boom") {}
  };
  std::size_t seen = 0;
  EXPECT_THROW(
      {
        auto r = read_clf_file(path, opts, [&](LogEntry&&) {
          if (++seen == 10) throw Boom();
        });
        (void)r;
      },
      Boom);
  EXPECT_EQ(seen, 10U);

  // The pool must still work and deliver identical results afterwards.
  std::size_t after_count = 0;
  auto after = read_clf_file(path, opts,
                             [&](LogEntry&&) { ++after_count; });
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after_count, clean_count);
  EXPECT_EQ(after.value().parsed, clean.value().parsed);
}

}  // namespace
}  // namespace fullweb::weblog
