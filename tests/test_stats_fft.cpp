#include "stats/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "support/rng.h"

namespace fullweb::stats {
namespace {

using cd = std::complex<double>;

/// Naive O(n^2) DFT reference.
std::vector<cd> naive_dft(const std::vector<cd>& xs) {
  const std::size_t n = xs.size();
  std::vector<cd> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cd acc(0, 0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * std::numbers::pi * static_cast<double>(k * t) /
                           static_cast<double>(n);
      acc += xs[t] * cd(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<cd> random_signal(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<cd> xs(n);
  for (auto& x : xs) x = cd(rng.normal(), rng.normal());
  return xs;
}

class FftMatchesNaive : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftMatchesNaive, ForwardAgreesWithDft) {
  const std::size_t n = GetParam();
  auto xs = random_signal(n, 42 + n);
  const auto expected = naive_dft(xs);
  fft(xs);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(xs[k].real(), expected[k].real(), 1e-8 * static_cast<double>(n))
        << "n=" << n << " k=" << k;
    EXPECT_NEAR(xs[k].imag(), expected[k].imag(), 1e-8 * static_cast<double>(n));
  }
}

// Powers of two (radix-2 path) and awkward composite/prime lengths
// (Bluestein path), including the degenerate sizes.
INSTANTIATE_TEST_SUITE_P(Sizes, FftMatchesNaive,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31,
                                           32, 60, 64, 97, 100, 128, 210, 256));

// The Bluestein pain points: primes and 2^k +- 1 lengths, where the chirp
// convolution length 2n-1 sits just above/below a power of two.
INSTANTIATE_TEST_SUITE_P(PrimesAndPow2Neighbours, FftMatchesNaive,
                         ::testing::Values(63, 65, 127, 129, 251, 255, 257,
                                           509, 511, 513));

TEST(Fft, RandomLengthsAgreeWithNaiveDft) {
  support::Rng rng(2026);
  for (int trial = 0; trial < 12; ++trial) {
    const auto n = static_cast<std::size_t>(2 + rng.below(1400));
    auto xs = random_signal(n, 1000 + trial);
    const auto expected = naive_dft(xs);
    fft(xs);
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_NEAR(xs[k].real(), expected[k].real(),
                  1e-8 * static_cast<double>(n))
          << "n=" << n << " k=" << k;
      ASSERT_NEAR(xs[k].imag(), expected[k].imag(),
                  1e-8 * static_cast<double>(n))
          << "n=" << n << " k=" << k;
    }
  }
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversSignal) {
  const std::size_t n = GetParam();
  const auto original = random_signal(n, 7 + n);
  auto xs = original;
  fft(xs);
  ifft(xs);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(xs[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(xs[i].imag(), original[i].imag(), 1e-9);
  }
}

// 2^k +- 1 keeps the round-trip on the Bluestein path right next to the
// radix-2 sizes it embeds.
INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 3, 8, 13, 64, 100, 1000, 1023,
                                           1024, 1025, 4095, 4096, 4097,
                                           6000));

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<cd> xs(8, cd(0, 0));
  xs[0] = cd(1, 0);
  fft(xs);
  for (const auto& v : xs) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, PureToneConcentratesAtItsBin) {
  const std::size_t n = 64;
  std::vector<cd> xs(n);
  const std::size_t bin = 5;
  for (std::size_t t = 0; t < n; ++t) {
    const double angle = 2.0 * std::numbers::pi * static_cast<double>(bin * t) /
                         static_cast<double>(n);
    xs[t] = cd(std::cos(angle), 0.0);
  }
  fft(xs);
  // cos splits between bins k and n-k with magnitude n/2 each.
  EXPECT_NEAR(std::abs(xs[bin]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(xs[n - bin]), n / 2.0, 1e-9);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == bin || k == n - bin) continue;
    EXPECT_NEAR(std::abs(xs[k]), 0.0, 1e-9);
  }
}

TEST(Fft, ParsevalHolds) {
  auto xs = random_signal(100, 3);  // Bluestein path
  double time_energy = 0;
  for (const auto& v : xs) time_energy += std::norm(v);
  fft(xs);
  double freq_energy = 0;
  for (const auto& v : xs) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 100.0, time_energy, 1e-8 * time_energy);
}

TEST(FftReal, PackedPow2PathAgreesWithComplexFft) {
  // Power-of-two lengths take the pack-two-halves real path; it must agree
  // with the full complex transform of the same data.
  for (std::size_t n : {2U, 8U, 64U, 1024U}) {
    support::Rng rng(11 + n);
    std::vector<double> xs(n);
    for (auto& x : xs) x = rng.normal();
    std::vector<cd> reference(n);
    for (std::size_t i = 0; i < n; ++i) reference[i] = cd(xs[i], 0.0);
    fft(reference);
    // Exercise the out-param overload with a dirty, wrongly-sized buffer.
    std::vector<cd> spec(3, cd(99, 99));
    fft_real(xs, spec);
    ASSERT_EQ(spec.size(), n);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(spec[k].real(), reference[k].real(),
                  1e-10 * static_cast<double>(n))
          << "n=" << n << " k=" << k;
      EXPECT_NEAR(spec[k].imag(), reference[k].imag(),
                  1e-10 * static_cast<double>(n))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(FftReal, ConjugateSymmetry) {
  support::Rng rng(5);
  std::vector<double> xs(100);
  for (auto& x : xs) x = rng.normal();
  const auto spec = fft_real(xs);
  ASSERT_EQ(spec.size(), 100U);
  for (std::size_t k = 1; k < 50; ++k) {
    EXPECT_NEAR(spec[k].real(), spec[100 - k].real(), 1e-9);
    EXPECT_NEAR(spec[k].imag(), -spec[100 - k].imag(), 1e-9);
  }
}

TEST(NextPow2, Boundaries) {
  EXPECT_EQ(next_pow2(1), 1U);
  EXPECT_EQ(next_pow2(2), 2U);
  EXPECT_EQ(next_pow2(3), 4U);
  EXPECT_EQ(next_pow2(1024), 1024U);
  EXPECT_EQ(next_pow2(1025), 2048U);
}

TEST(NextPow2, SignalsOverflowInsteadOfLooping) {
  // The largest representable power of two is (SIZE_MAX >> 1) + 1. Anything
  // above it cannot be rounded up; next_pow2 must return 0, not spin or
  // wrap around.
  constexpr std::size_t kTopPow2 = (SIZE_MAX >> 1) + 1;
  EXPECT_EQ(next_pow2(kTopPow2), kTopPow2);
  EXPECT_EQ(next_pow2(kTopPow2 + 1), 0U);
  EXPECT_EQ(next_pow2(SIZE_MAX), 0U);
}

TEST(IsPow2, Classification) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
}

}  // namespace
}  // namespace fullweb::stats
