#include "weblog/merge.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "weblog/clf.h"
#include "weblog/dataset.h"

namespace fullweb::weblog {
namespace {

LogEntry entry(double time, const std::string& client) {
  LogEntry e;
  e.timestamp = time;
  e.client = client;
  e.method = "GET";
  e.path = "/";
  e.status = 200;
  e.bytes = 1;
  return e;
}

TEST(MergeEntries, ChronologicalUnion) {
  std::vector<std::vector<LogEntry>> logs;
  logs.push_back({entry(10, "a"), entry(30, "a")});
  logs.push_back({entry(20, "b"), entry(40, "b")});
  const auto merged = merge_entries(std::move(logs));
  ASSERT_EQ(merged.size(), 4U);
  for (std::size_t i = 1; i < merged.size(); ++i)
    EXPECT_LE(merged[i - 1].timestamp, merged[i].timestamp);
  EXPECT_EQ(merged[0].client, "a");
  EXPECT_EQ(merged[1].client, "b");
}

TEST(MergeEntries, StableOnTies) {
  // Replica 1's entry precedes replica 2's at the same timestamp.
  std::vector<std::vector<LogEntry>> logs;
  logs.push_back({entry(10, "replica1")});
  logs.push_back({entry(10, "replica2")});
  const auto merged = merge_entries(std::move(logs));
  ASSERT_EQ(merged.size(), 2U);
  EXPECT_EQ(merged[0].client, "replica1");
  EXPECT_EQ(merged[1].client, "replica2");
}

TEST(MergeEntries, EmptyInputs) {
  EXPECT_TRUE(merge_entries({}).empty());
  std::vector<std::vector<LogEntry>> logs(3);
  EXPECT_TRUE(merge_entries(std::move(logs)).empty());
}

TEST(MergeEntries, SessionsReuniteAcrossReplicas) {
  // The reason Figure 1 merges first: one client alternating between two
  // replicas must form ONE session, not two.
  std::vector<std::vector<LogEntry>> logs;
  logs.push_back({entry(0, "u"), entry(120, "u")});
  logs.push_back({entry(60, "u"), entry(180, "u")});
  auto merged = merge_entries(std::move(logs));
  auto ds = Dataset::from_entries("merged", merged);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().sessions().size(), 1U);
  EXPECT_EQ(ds.value().sessions().front().requests, 4U);
}

class MergeFilesTest : public ::testing::Test {
 protected:
  void write_log(const std::string& path, std::initializer_list<double> times) {
    std::ofstream os(path);
    for (double t : times) os << to_clf_line(entry(t, "c")) << '\n';
    paths_.push_back(path);
  }
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::vector<std::string> paths_;
};

TEST_F(MergeFilesTest, ParsesAndMergesMultipleFiles) {
  write_log("/tmp/fullweb_merge_a.log", {1000.0, 3000.0});
  write_log("/tmp/fullweb_merge_b.log", {2000.0});
  const auto r = merge_clf_files(paths_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().entries.size(), 3U);
  EXPECT_EQ(r.value().files.size(), 2U);
  EXPECT_EQ(r.value().files[0].parsed, 2U);
  EXPECT_EQ(r.value().files[1].parsed, 1U);
  EXPECT_DOUBLE_EQ(r.value().entries[1].timestamp, 2000.0);
}

TEST_F(MergeFilesTest, UnreadableFileReportedNotFatal) {
  write_log("/tmp/fullweb_merge_c.log", {1000.0});
  paths_.push_back("/nonexistent/file.log");
  const auto r = merge_clf_files(paths_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().entries.size(), 1U);
  ASSERT_EQ(r.value().files.size(), 2U);
  EXPECT_EQ(r.value().files[1].parsed, 0U);
  // Regression: an unopenable path must be flagged, not reported as a
  // silently-empty parse (parsed=0 malformed=0 with no error).
  EXPECT_TRUE(r.value().files[1].open_failed);
  EXPECT_FALSE(r.value().files[1].error.empty());
  EXPECT_FALSE(r.value().files[0].open_failed);
  EXPECT_TRUE(r.value().files[0].error.empty());
}

TEST_F(MergeFilesTest, EmptyReadableFileIsNotAnOpenFailure) {
  {
    std::ofstream os("/tmp/fullweb_merge_empty.log");
  }
  paths_.push_back("/tmp/fullweb_merge_empty.log");
  write_log("/tmp/fullweb_merge_d.log", {1000.0});
  const auto r = merge_clf_files(paths_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().files.size(), 2U);
  EXPECT_FALSE(r.value().files[0].open_failed);
  EXPECT_EQ(r.value().files[0].parsed, 0U);
}

TEST_F(MergeFilesTest, AllUnreadableIsError) {
  const std::vector<std::string> paths = {"/nope/a.log", "/nope/b.log"};
  EXPECT_FALSE(merge_clf_files(paths).ok());
}

}  // namespace
}  // namespace fullweb::weblog
