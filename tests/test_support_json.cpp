// Tests for the shared JSON reader/writer (support/json.h): parse shapes,
// malformed-input rejection, deterministic writer output, and double
// round-tripping — the properties the validation-report drift checker and
// bench_compare both lean on.
#include "support/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

namespace {

using fullweb::support::JsonWriter;
using fullweb::support::json_format_double;
using fullweb::support::json_parse;
using fullweb::support::json_quote;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(json_parse("null").has_value());
  EXPECT_EQ(json_parse("true")->boolean(), true);
  EXPECT_EQ(json_parse("false")->boolean(), false);
  EXPECT_DOUBLE_EQ(*json_parse("3.5")->number(), 3.5);
  EXPECT_DOUBLE_EQ(*json_parse("-1e3")->number(), -1000.0);
  EXPECT_EQ(*json_parse("\"hi\"")->string(), "hi");
}

TEST(JsonParse, NestedDocument) {
  const auto doc = json_parse(R"({
    "benchmarks": [
      {"name": "bm_a", "real_time": 12.5, "time_unit": "ns"},
      {"name": "bm_b", "real_time": 1.5, "time_unit": "us"}
    ],
    "context": {"threads": 8}
  })");
  ASSERT_TRUE(doc.has_value());
  const auto* benches = doc->find("benchmarks");
  ASSERT_NE(benches, nullptr);
  ASSERT_NE(benches->array(), nullptr);
  ASSERT_EQ(benches->array()->size(), 2u);
  EXPECT_EQ(*(*benches->array())[0].find("name")->string(), "bm_a");
  EXPECT_DOUBLE_EQ(*doc->find("context")->find("threads")->number(), 8.0);
}

TEST(JsonParse, StringEscapes) {
  const auto doc = json_parse(R"("a\"b\\c\nd")");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(*doc->string(), "a\"b\\c\nd");
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_FALSE(json_parse("").has_value());
  EXPECT_FALSE(json_parse("{").has_value());
  EXPECT_FALSE(json_parse("[1, 2").has_value());
  EXPECT_FALSE(json_parse("{\"a\": }").has_value());
  EXPECT_FALSE(json_parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(json_parse("nulll").has_value());
  EXPECT_FALSE(json_parse("1 2").has_value());  // trailing garbage
  EXPECT_FALSE(json_parse("'single'").has_value());
}

TEST(JsonParse, LookupOnWrongTypesIsNull) {
  const auto doc = json_parse("[1, 2, 3]");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->object(), nullptr);
  EXPECT_EQ(doc->find("anything"), nullptr);
  EXPECT_FALSE(doc->number().has_value());
}

TEST(JsonFormatDouble, RoundTripsExactly) {
  for (double x : {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 1e-300, 6.02e23,
                   0.9499999999999, 123456789.123456789}) {
    const std::string s = json_format_double(x);
    EXPECT_EQ(std::stod(s), x) << s;
  }
}

TEST(JsonQuote, EscapesControlAndQuote) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("a\nb"), "\"a\\nb\"");
}

TEST(JsonWriter, ProducesParseableDeterministicOutput) {
  JsonWriter w;
  w.begin_object();
  w.field("name", "selftest");
  w.field("pass", true);
  w.field("count", std::size_t{3});
  w.key("cells");
  w.begin_array();
  for (int i = 0; i < 2; ++i) {
    w.begin_object();
    w.field("bias", 0.25 * i);
    w.end_object();
  }
  w.end_array();
  w.key("nothing");
  w.null();
  w.end_object();
  const std::string doc = std::move(w).str();

  const auto parsed = json_parse(doc);
  ASSERT_TRUE(parsed.has_value()) << doc;
  EXPECT_EQ(*parsed->find("name")->string(), "selftest");
  EXPECT_EQ(*parsed->find("pass")->boolean(), true);
  EXPECT_DOUBLE_EQ(*parsed->find("count")->number(), 3.0);
  ASSERT_EQ(parsed->find("cells")->array()->size(), 2u);
  EXPECT_DOUBLE_EQ(*(*parsed->find("cells")->array())[1].find("bias")->number(),
                   0.25);

  // Byte-determinism: an identical call sequence yields identical bytes.
  JsonWriter w2;
  w2.begin_object();
  w2.field("name", "selftest");
  w2.field("pass", true);
  w2.field("count", std::size_t{3});
  w2.key("cells");
  w2.begin_array();
  for (int i = 0; i < 2; ++i) {
    w2.begin_object();
    w2.field("bias", 0.25 * i);
    w2.end_object();
  }
  w2.end_array();
  w2.key("nothing");
  w2.null();
  w2.end_object();
  EXPECT_EQ(doc, std::move(w2).str());
}

TEST(JsonWriter, WriterOutputSurvivesParserRoundTrip) {
  JsonWriter w;
  w.begin_array();
  w.value(1.0 / 3.0);
  w.value("esc\"aped");
  w.value(false);
  w.end_array();
  const std::string doc = std::move(w).str();
  const auto parsed = json_parse(doc);
  ASSERT_TRUE(parsed.has_value());
  const auto& arr = *parsed->array();
  EXPECT_DOUBLE_EQ(*arr[0].number(), 1.0 / 3.0);
  EXPECT_EQ(*arr[1].string(), "esc\"aped");
  EXPECT_EQ(*arr[2].boolean(), false);
}

}  // namespace
