#include "stats/periodogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "support/rng.h"

namespace fullweb::stats {
namespace {

TEST(Periodogram, PureSinePeaksAtItsFrequency) {
  const std::size_t n = 1024;
  const std::size_t cycle_bin = 32;  // 32 cycles over the window
  std::vector<double> xs(n);
  for (std::size_t t = 0; t < n; ++t)
    xs[t] = std::sin(2.0 * std::numbers::pi * static_cast<double>(cycle_bin * t) /
                     static_cast<double>(n));
  const auto pg = periodogram(xs);
  ASSERT_FALSE(pg.power.empty());

  std::size_t argmax = 0;
  for (std::size_t i = 1; i < pg.power.size(); ++i)
    if (pg.power[i] > pg.power[argmax]) argmax = i;
  // frequency index j corresponds to pg arrays offset j-1
  EXPECT_EQ(argmax, cycle_bin - 1);
}

TEST(Periodogram, FrequenciesAreHarmonics) {
  std::vector<double> xs(100, 0.0);
  xs[3] = 1.0;
  const auto pg = periodogram(xs);
  ASSERT_EQ(pg.frequency.size(), 49U);  // floor((100-1)/2)
  for (std::size_t j = 1; j <= pg.frequency.size(); ++j) {
    EXPECT_NEAR(pg.frequency[j - 1],
                2.0 * std::numbers::pi * static_cast<double>(j) / 100.0, 1e-12);
  }
}

TEST(Periodogram, MeanInvariance) {
  // Adding a constant must not change the periodogram (mean is removed).
  support::Rng rng(1);
  std::vector<double> a(256), b(256);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.normal();
    b[i] = a[i] + 100.0;
  }
  const auto pa = periodogram(a);
  const auto pb = periodogram(b);
  for (std::size_t i = 0; i < pa.power.size(); ++i)
    EXPECT_NEAR(pa.power[i], pb.power[i], 1e-9);
}

TEST(Periodogram, TotalPowerMatchesVariance) {
  // Sum of I(lambda_j) over all +/- frequencies ~ variance / (2 pi / n) ...
  // easier invariant: 4 pi / n * sum I ~= population variance for even n
  // without the Nyquist bin; use a tolerance.
  support::Rng rng(2);
  std::vector<double> xs(1001);  // odd: bins cover everything but j=0
  for (auto& x : xs) x = rng.normal();
  const auto pg = periodogram(xs);
  double total = 0;
  for (double p : pg.power) total += p;
  double var = 0, m = 0;
  for (double x : xs) m += x;
  m /= static_cast<double>(xs.size());
  for (double x : xs) var += (x - m) * (x - m);
  var /= static_cast<double>(xs.size());
  EXPECT_NEAR(4.0 * std::numbers::pi * total / static_cast<double>(xs.size()),
              var, 0.05 * var);
}

TEST(Periodogram, TooShortSeriesIsEmpty) {
  const std::vector<double> xs = {1.0};
  const auto pg = periodogram(xs);
  EXPECT_TRUE(pg.power.empty());
}

TEST(DominantPeriod, FindsDailyCycle) {
  // 86400-sample period embedded in noise, series of one "week" at a coarse
  // 60 s resolution: period = 1440 bins.
  const std::size_t n = 7 * 1440;
  support::Rng rng(3);
  std::vector<double> xs(n);
  for (std::size_t t = 0; t < n; ++t) {
    xs[t] = 5.0 * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 1440.0) +
            rng.normal();
  }
  const auto pg = periodogram(xs);
  const double period = dominant_period(pg, 100.0, 4000.0);
  EXPECT_NEAR(period, 1440.0, 35.0);  // within one harmonic bin
}

TEST(DominantPeriod, RespectsSearchBounds) {
  const std::size_t n = 1000;
  std::vector<double> xs(n);
  for (std::size_t t = 0; t < n; ++t)
    xs[t] = std::sin(2.0 * std::numbers::pi * static_cast<double>(t) / 50.0);
  const auto pg = periodogram(xs);
  // Exclude the true 50-sample period from the window: nothing to find
  // above it but harmonics below; bounds [100, 400] exclude period 50.
  const double period = dominant_period(pg, 100.0, 400.0);
  EXPECT_TRUE(period == 0.0 || (period >= 100.0 && period <= 400.0));
}

}  // namespace
}  // namespace fullweb::stats
