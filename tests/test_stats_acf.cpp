#include "stats/acf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.h"

namespace fullweb::stats {
namespace {

/// Direct-summation reference for the biased ACF estimator.
double reference_acf(const std::vector<double>& xs, std::size_t k) {
  double m = 0;
  for (double x : xs) m += x;
  m /= static_cast<double>(xs.size());
  double c0 = 0, ck = 0;
  for (std::size_t t = 0; t < xs.size(); ++t) c0 += (xs[t] - m) * (xs[t] - m);
  for (std::size_t t = 0; t + k < xs.size(); ++t)
    ck += (xs[t] - m) * (xs[t + k] - m);
  return ck / c0;
}

TEST(Acf, LagZeroIsOne) {
  const std::vector<double> xs = {1, 3, 2, 5, 4};
  const auto r = acf(xs, 3);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
}

TEST(Acf, FftMatchesDirectSummation) {
  support::Rng rng(9);
  std::vector<double> xs(500);
  xs[0] = rng.normal();
  for (std::size_t t = 1; t < xs.size(); ++t)
    xs[t] = 0.5 * xs[t - 1] + rng.normal();
  const auto r = acf(xs, 20);
  for (std::size_t k = 0; k <= 20; ++k)
    EXPECT_NEAR(r[k], reference_acf(xs, k), 1e-10) << "lag " << k;
}

TEST(Acf, AutocorrelationAtMatchesAcf) {
  support::Rng rng(11);
  std::vector<double> xs(300);
  for (auto& x : xs) x = rng.uniform();
  const auto r = acf(xs, 10);
  for (std::size_t k = 0; k <= 10; ++k)
    EXPECT_NEAR(autocorrelation_at(xs, k), r[k], 1e-10);
}

TEST(Acf, AlternatingSeriesNegativeLagOne) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  const auto r = acf(xs, 2);
  EXPECT_LT(r[1], -0.9);
  EXPECT_GT(r[2], 0.9);
}

TEST(Acf, Ar1DecaysGeometrically) {
  // AR(1) with phi = 0.8: r(k) ~= 0.8^k.
  support::Rng rng(21);
  std::vector<double> xs(200000);
  xs[0] = rng.normal();
  for (std::size_t t = 1; t < xs.size(); ++t)
    xs[t] = 0.8 * xs[t - 1] + rng.normal();
  const auto r = acf(xs, 5);
  for (std::size_t k = 1; k <= 5; ++k)
    EXPECT_NEAR(r[k], std::pow(0.8, static_cast<double>(k)), 0.02) << "lag " << k;
}

TEST(Acf, WhiteNoiseNearZero) {
  support::Rng rng(31);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.normal();
  const auto r = acf(xs, 10);
  for (std::size_t k = 1; k <= 10; ++k) EXPECT_NEAR(r[k], 0.0, 0.02);
}

TEST(Acf, ConstantSeriesIsHandled) {
  const std::vector<double> xs(50, 7.0);
  const auto r = acf(xs, 5);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  for (std::size_t k = 1; k <= 5; ++k) EXPECT_DOUBLE_EQ(r[k], 0.0);
}

TEST(Acf, MaxLagClampedToSeriesLength) {
  const std::vector<double> xs = {1, 2, 3};
  const auto r = acf(xs, 100);
  EXPECT_EQ(r.size(), 3U);  // lags 0..2
}

TEST(AutocorrelationAt, OutOfRangeLagIsZero) {
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_DOUBLE_EQ(autocorrelation_at(xs, 3), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation_at(xs, 10), 0.0);
}

TEST(AcfAbsSum, LrdVsSrdOrdering) {
  // A strongly positively correlated series has a much larger absolute ACF
  // sum than white noise — the non-summability diagnostic of Figure 3/5.
  support::Rng rng(41);
  std::vector<double> white(20000), ar1(20000);
  for (auto& x : white) x = rng.normal();
  ar1[0] = rng.normal();
  for (std::size_t t = 1; t < ar1.size(); ++t)
    ar1[t] = 0.95 * ar1[t - 1] + rng.normal();
  EXPECT_GT(acf_abs_sum(ar1, 100), 5.0 * acf_abs_sum(white, 100));
}

}  // namespace
}  // namespace fullweb::stats
