// Tests for the tail-analysis cells, arrival analysis, and the assembled
// FULL-Web model on a small synthetic day.
#include <gtest/gtest.h>

#include <vector>

#include "core/arrival_analysis.h"
#include "core/fullweb_model.h"
#include "core/tail_analysis.h"
#include "stats/distributions.h"
#include "support/rng.h"
#include "synth/generator.h"
#include "timeseries/fgn.h"

namespace fullweb::core {
namespace {

std::vector<double> pareto_sample(double alpha, std::size_t n,
                                  std::uint64_t seed) {
  support::Rng rng(seed);
  const stats::Pareto p(alpha, 1.0);
  std::vector<double> xs(n);
  for (auto& x : xs) x = p.sample(rng);
  return xs;
}

TEST(TailAnalysis, HeavySampleProducesFullCells) {
  const auto xs = pareto_sample(1.5, 5000, 1);
  support::Rng rng(2);
  TailAnalysisOptions opts;
  opts.curvature_replicates = 49;
  const auto t = analyze_tail(xs, rng, opts);
  ASSERT_TRUE(t.available);
  ASSERT_TRUE(t.llcd.has_value());
  EXPECT_NEAR(t.llcd->alpha, 1.5, 0.35);
  ASSERT_TRUE(t.hill.has_value());
  EXPECT_TRUE(t.heavy_tailed());
  EXPECT_NE(t.hill_cell(), "NA");
  EXPECT_NE(t.llcd_cell(), "NA");
  EXPECT_NE(t.r2_cell(), "NA");
  ASSERT_TRUE(t.curvature_pareto.has_value());
  EXPECT_GT(t.curvature_pareto->p_value, 0.05);  // Pareto data: not rejected
}

TEST(TailAnalysis, TinySampleIsNA) {
  const auto xs = pareto_sample(1.5, 40, 3);
  support::Rng rng(4);
  const auto t = analyze_tail(xs, rng);
  EXPECT_FALSE(t.available);
  EXPECT_EQ(t.hill_cell(), "NA");
  EXPECT_EQ(t.llcd_cell(), "NA");
  EXPECT_EQ(t.r2_cell(), "NA");
}

TEST(TailAnalysis, NonStabilizedHillIsNS) {
  // Lognormal with strict stability -> Hill cell "NS", LLCD still reported.
  support::Rng rng_data(5);
  const stats::Lognormal ln(0.0, 2.0);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = ln.sample(rng_data);
  support::Rng rng(6);
  TailAnalysisOptions opts;
  opts.run_curvature = false;
  opts.hill.stability_cv = 0.02;
  const auto t = analyze_tail(xs, rng, opts);
  ASSERT_TRUE(t.available);
  EXPECT_EQ(t.hill_cell(), "NS");
  EXPECT_NE(t.llcd_cell(), "NA");
}

TEST(TailAnalysis, LightTailNotHeavy) {
  support::Rng rng_data(7);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng_data.uniform(1.0, 2.0);
  support::Rng rng(8);
  TailAnalysisOptions opts;
  opts.run_curvature = false;
  const auto t = analyze_tail(xs, rng, opts);
  if (t.available && t.llcd.has_value()) EXPECT_FALSE(t.heavy_tailed());
}

TEST(ArrivalAnalysis, LrdSeriesDetected) {
  support::Rng rng(9);
  auto fgn = timeseries::generate_fgn(1 << 14, 0.8, 1.0, rng);
  ASSERT_TRUE(fgn.ok());
  // Shift to positive counts-like values.
  for (auto& x : fgn.value()) x = x * 2.0 + 10.0;
  ArrivalAnalysisOptions opts;
  opts.aggregation_levels = {1, 4, 16};
  const auto a = analyze_arrivals(fgn.value(), opts);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a.value().long_range_dependent());
  EXPECT_EQ(a.value().whittle_sweep.size(), 3U);
  EXPECT_EQ(a.value().abry_veitch_sweep.size(), 3U);
  for (const auto& p : a.value().whittle_sweep)
    EXPECT_NEAR(p.estimate.h, 0.8, 0.1);
}

TEST(ArrivalAnalysis, SweepSkippable) {
  support::Rng rng(10);
  auto fgn = timeseries::generate_fgn(4096, 0.7, 1.0, rng);
  ASSERT_TRUE(fgn.ok());
  ArrivalAnalysisOptions opts;
  opts.run_aggregation_sweep = false;
  const auto a = analyze_arrivals(fgn.value(), opts);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(a.value().whittle_sweep.empty());
}

TEST(FullWebModel, AssemblesOnSyntheticDay) {
  support::Rng rng(11);
  synth::GeneratorOptions gen;
  gen.duration = 86400.0;
  gen.scale = 0.5;
  const auto ds = synth::generate_dataset(synth::ServerProfile::csee(), gen, rng);
  ASSERT_TRUE(ds.ok());

  FullWebOptions opts;
  opts.interval_seconds = 4 * 3600.0;
  opts.tails.curvature_replicates = 19;
  opts.arrivals.aggregation_levels = {1, 10};
  auto model = fit_fullweb_model(ds.value(), rng, opts);
  ASSERT_TRUE(model.ok());

  const FullWebModel& m = model.value();
  EXPECT_EQ(m.server, "CSEE");
  EXPECT_EQ(m.total_requests, ds.value().requests().size());
  EXPECT_EQ(m.total_sessions, ds.value().sessions().size());
  EXPECT_GT(m.mb_transferred, 0.0);

  // Three Low/Med/High tails groups plus the week row.
  EXPECT_EQ(m.interval_tails.size(), 3U);
  EXPECT_GT(m.week_tails.sessions, 1000U);
  EXPECT_TRUE(m.week_tails.length.available);
  EXPECT_TRUE(m.week_tails.requests.available);
  EXPECT_TRUE(m.week_tails.bytes.available);

  // Request-level Poisson must be rejected (bursty LRD arrivals).
  ASSERT_EQ(m.request_poisson.size(), 3U);
  for (const auto& [load, battery] : m.request_poisson) {
    if (battery.available && battery.any_ran())
      EXPECT_FALSE(battery.poisson_all()) << to_string(load);
  }

  // The report renders without crashing and mentions the server.
  const std::string report = render_report(m);
  EXPECT_NE(report.find("CSEE"), std::string::npos);
  EXPECT_NE(report.find("Hill"), std::string::npos);
}

TEST(PoissonBattery, VerdictHelpers) {
  PoissonBattery b;
  EXPECT_FALSE(b.any_ran());
  EXPECT_FALSE(b.poisson_all());
  b.hourly_uniform.ran = true;
  b.hourly_uniform.result.independent = true;
  b.hourly_uniform.result.exponential = true;
  EXPECT_TRUE(b.any_ran());
  EXPECT_TRUE(b.poisson_all());
  b.tenmin_uniform.ran = true;
  b.tenmin_uniform.result.independent = false;
  EXPECT_FALSE(b.poisson_all());
}

}  // namespace
}  // namespace fullweb::core
