#include "tail/llcd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/distributions.h"
#include "support/rng.h"

namespace fullweb::tail {
namespace {

std::vector<double> pareto_sample(double alpha, double k, std::size_t n,
                                  std::uint64_t seed) {
  support::Rng rng(seed);
  const stats::Pareto p(alpha, k);
  std::vector<double> xs(n);
  for (auto& x : xs) x = p.sample(rng);
  return xs;
}

TEST(LlcdPlot, PointsAreLogLogCcdf) {
  const std::vector<double> xs = {1, 10, 100, 1000};
  const auto plot = llcd_plot(xs);
  ASSERT_TRUE(plot.ok());
  // Last point (CCDF = 0) dropped: 3 points remain.
  ASSERT_EQ(plot.value().log10_x.size(), 3U);
  EXPECT_DOUBLE_EQ(plot.value().log10_x[0], 0.0);
  EXPECT_NEAR(plot.value().log10_ccdf[0], std::log10(0.75), 1e-12);
  EXPECT_NEAR(plot.value().log10_ccdf[2], std::log10(0.25), 1e-12);
}

TEST(LlcdPlot, SkipsNonPositiveValues) {
  const std::vector<double> xs = {-5, 0, 1, 2, 3};
  const auto plot = llcd_plot(xs);
  ASSERT_TRUE(plot.ok());
  EXPECT_EQ(plot.value().log10_x.size(), 2U);  // 1 and 2 (3 is the last)
}

TEST(LlcdPlot, ErrorsOnDegenerateInput) {
  EXPECT_FALSE(llcd_plot(std::vector<double>{}).ok());
  EXPECT_FALSE(llcd_plot(std::vector<double>{1.0}).ok());
  EXPECT_FALSE(llcd_plot(std::vector<double>{-1.0, -2.0, 0.0}).ok());
}

class LlcdRecoversAlpha : public ::testing::TestWithParam<double> {};

TEST_P(LlcdRecoversAlpha, OnPureParetoSample) {
  const double alpha = GetParam();
  const auto xs =
      pareto_sample(alpha, 1.0, 30000, 50 + static_cast<std::uint64_t>(alpha * 10));
  const auto fit = llcd_fit(xs);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().alpha, alpha, 0.15 * alpha);
  EXPECT_GT(fit.value().r_squared, 0.97);
}

INSTANTIATE_TEST_SUITE_P(Alphas, LlcdRecoversAlpha,
                         ::testing::Values(0.8, 1.0, 1.5, 2.0, 2.5));

TEST(LlcdFit, ExplicitThetaRestrictsRange) {
  // Body: uniform junk below 10; tail: Pareto(1.5) above 10.
  support::Rng rng(61);
  std::vector<double> xs;
  const stats::Pareto tail(1.5, 10.0);
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.uniform(0.1, 10.0));
  for (int i = 0; i < 5000; ++i) xs.push_back(tail.sample(rng));

  LlcdOptions opts;
  opts.theta = 20.0;  // inside the Pareto region
  const auto fit = llcd_fit(xs, opts);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().alpha, 1.5, 0.2);
  EXPECT_DOUBLE_EQ(fit.value().theta, 20.0);
}

TEST(LlcdFit, TailFractionSelectsQuantileCutoff) {
  const auto xs = pareto_sample(1.2, 1.0, 20000, 62);
  LlcdOptions opts;
  opts.tail_fraction = 0.10;
  const auto fit = llcd_fit(xs, opts);
  ASSERT_TRUE(fit.ok());
  // theta should sit near the 90th percentile: (0.1)^(-1/1.2) ~= 6.8.
  EXPECT_NEAR(fit.value().theta, std::pow(0.1, -1.0 / 1.2), 1.5);
  EXPECT_NEAR(fit.value().alpha, 1.2, 0.25);
}

TEST(LlcdFit, ExponentialSlopeSteepensIntoTheTail) {
  // Exponential is NOT heavy-tailed: its LLCD slope keeps steepening, so
  // the fitted "alpha" grows as the fit window moves deeper into the tail —
  // whereas a genuine Pareto slope stays put. (This is exactly why the
  // paper backs LLCD fits with the curvature test.)
  support::Rng rng(63);
  const stats::Exponential e(1.0);
  std::vector<double> exp_xs(50000);
  for (auto& x : exp_xs) x = e.sample(rng);
  const stats::Pareto p(1.5, 1.0);
  std::vector<double> par_xs(50000);
  for (auto& x : par_xs) x = p.sample(rng);

  LlcdOptions shallow;
  shallow.tail_fraction = 0.5;
  LlcdOptions deep;
  deep.tail_fraction = 0.02;

  const auto exp_shallow = llcd_fit(exp_xs, shallow);
  const auto exp_deep = llcd_fit(exp_xs, deep);
  ASSERT_TRUE(exp_shallow.ok());
  ASSERT_TRUE(exp_deep.ok());
  EXPECT_GT(exp_deep.value().alpha, 1.8 * exp_shallow.value().alpha);

  const auto par_shallow = llcd_fit(par_xs, shallow);
  const auto par_deep = llcd_fit(par_xs, deep);
  ASSERT_TRUE(par_shallow.ok());
  ASSERT_TRUE(par_deep.ok());
  EXPECT_NEAR(par_deep.value().alpha, par_shallow.value().alpha,
              0.35 * par_shallow.value().alpha);
}

TEST(LlcdFit, StandardErrorShrinksWithSampleSize) {
  const auto small = pareto_sample(1.5, 1.0, 2000, 64);
  const auto large = pareto_sample(1.5, 1.0, 100000, 65);
  const auto fs = llcd_fit(small);
  const auto fl = llcd_fit(large);
  ASSERT_TRUE(fs.ok());
  ASSERT_TRUE(fl.ok());
  EXPECT_LT(fl.value().stderr_alpha, fs.value().stderr_alpha);
}

TEST(LlcdFit, InsufficientTailPointsErrors) {
  // Many ties: only a handful of distinct values -> too few plot points.
  std::vector<double> xs(1000, 5.0);
  xs.push_back(6.0);
  xs.push_back(7.0);
  EXPECT_FALSE(llcd_fit(xs).ok());
}

TEST(LlcdFit, VarianceClassification) {
  LlcdFit fit;
  fit.alpha = 1.5;
  EXPECT_TRUE(fit.infinite_variance());
  EXPECT_FALSE(fit.infinite_mean());
  fit.alpha = 0.9;
  EXPECT_TRUE(fit.infinite_mean());
  fit.alpha = 2.5;
  EXPECT_FALSE(fit.infinite_variance());
}

TEST(LlcdFit, TailSampleCountReported) {
  const auto xs = pareto_sample(2.0, 1.0, 10000, 66);
  LlcdOptions opts;
  opts.tail_fraction = 0.25;
  const auto fit = llcd_fit(xs, opts);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(static_cast<double>(fit.value().tail_samples), 2500.0, 150.0);
}

}  // namespace
}  // namespace fullweb::tail
